package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"cubetree/internal/lattice"
	"cubetree/internal/pager"
	"cubetree/internal/rtree"
	"cubetree/internal/workload"
)

// ErrNoPlacement is wrapped into the error returned when no materialized
// view (or replica) covers a query's node — a client-side query mistake, not
// an engine failure; a server maps it to a 4xx.
var ErrNoPlacement = errors.New("core: no placement covers query")

// cancelCheckInterval is how many scanned points pass between context
// checks during a leaf scan: rare enough to stay off the profile, frequent
// enough that a cancelled query stops within a few pages.
const cancelCheckInterval = 1024

// Execute answers a slice query against the forest. It implements
// workload.Engine.
//
// Planning: among all placements whose view covers the query's node, the
// planner picks the one expected to touch the fewest leaves. Because a
// packed run is sorted last-coordinate-major, predicates on a suffix of the
// view's coordinates select a contiguous band of leaves; the estimator
// multiplies the run's leaf count by the selectivity of the fixed suffix.
// This is what makes replicas in different sort orders useful: each makes a
// different predicate set cheap.
func (f *Forest) Execute(q workload.Query) ([]workload.Row, error) {
	return f.ExecuteCtx(context.Background(), q)
}

// ExecuteCtx is Execute under a context: once ctx is cancelled or past its
// deadline the leaf scan stops within cancelCheckInterval points and the
// context's error is returned, so a timed-out or disconnected client stops
// consuming I/O instead of scanning to completion. It implements
// workload.EngineCtx.
func (f *Forest) ExecuteCtx(ctx context.Context, q workload.Query) ([]workload.Row, error) {
	if f.obs != nil {
		return f.executeObserved(ctx, q, nil)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	best := f.choosePlacement(q)
	if best < 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoPlacement, q)
	}
	rows, _, err := f.executeOn(ctx, &f.placements[best], q, nil)
	return rows, err
}

// ExecuteProfiledCtx is ExecuteCtx, additionally filling prof with an
// EXPLAIN-ANALYZE-style breakdown of the execution: routing decision, points
// scanned, leaf pages read vs zone-map skipped, the per-query pool hit/miss
// delta, and wall time. A nil prof makes it identical to ExecuteCtx — the
// profile-off path takes the exact same branches and allocates nothing extra.
func (f *Forest) ExecuteProfiledCtx(ctx context.Context, q workload.Query, prof *workload.QueryProfile) ([]workload.Row, error) {
	if prof == nil {
		return f.ExecuteCtx(ctx, q)
	}
	if f.obs != nil {
		return f.executeObserved(ctx, q, prof)
	}
	start := time.Now()
	before := f.stats.Snapshot()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	best := f.choosePlacement(q)
	if best < 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoPlacement, q)
	}
	p := &f.placements[best]
	var st rtree.SearchStats
	rows, scanned, err := f.executeOn(ctx, p, q, &st)
	fillProfile(prof, p, rows, scanned, &st, f.stats.Snapshot().Sub(before), time.Since(start))
	return rows, err
}

// fillProfile populates prof from one execution's raw numbers.
func fillProfile(prof *workload.QueryProfile, p *Placement, rows []workload.Row, scanned int64, st *rtree.SearchStats, delta pager.StatsSnapshot, dur time.Duration) {
	prof.View = p.View.String()
	prof.Tree = p.Tree
	prof.PointsScanned = scanned
	prof.RowsReturned = int64(len(rows))
	prof.LeafPagesRead = st.LeafPagesRead
	prof.LeafPagesSkipped = st.LeafPagesSkipped
	prof.PoolHits = int64(delta.PoolHits)
	prof.PoolMisses = int64(delta.PoolMisses)
	prof.DurationNS = int64(dur)
}

// choosePlacement returns the index of the cheapest placement covering q, or
// -1 when none does.
func (f *Forest) choosePlacement(q workload.Query) int {
	best := -1
	bestCost := math.MaxFloat64
	for i := range f.placements {
		p := &f.placements[i]
		if !p.View.Covers(q.Node) {
			continue
		}
		cost := f.placementCost(p, q)
		if cost < bestCost {
			bestCost = cost
			best = i
		}
	}
	return best
}

// placementCost estimates work when answering q on p, in points touched.
// Because a packed run is sorted last-coordinate-major, predicates on a
// suffix of the view's coordinates select a contiguous band of the run;
// the estimator scales the run's point count by that suffix's selectivity.
func (f *Forest) placementCost(p *Placement, q workload.Query) float64 {
	points := float64(p.Run.Points)
	if points < 1 {
		points = 1
	}
	// Selectivity of the maximal constrained suffix of the coordinate
	// order: equality predicates select 1/dom, ranges their width/dom.
	sel := 1.0
	for j := p.View.Arity() - 1; j >= 0; j-- {
		attr := p.View.Attrs[j]
		dom := float64(f.domains[attr])
		if _, ok := q.FixedValue(attr); ok {
			if dom > 1 {
				sel /= dom
			}
			continue
		}
		if r, ok := q.RangeFor(attr); ok {
			if dom > 1 {
				width := float64(r.Hi-r.Lo) + 1
				if width > dom {
					width = dom
				}
				sel *= width / dom
			}
			continue
		}
		break
	}
	est := points * sel
	if est < 1 {
		est = 1
	}
	// Tree height approximates the constant descent cost.
	return est + float64(f.trees[p.Tree].Height())
}

// executeOn runs q against placement p and aggregates the matching points
// by the query's node attributes. It also returns the number of stored
// points the search visited, for per-query observability. ctx is polled
// every cancelCheckInterval points so cancellation interrupts the scan.
// st, when non-nil, accumulates leaf read/skip counts for a query profile.
func (f *Forest) executeOn(ctx context.Context, p *Placement, q workload.Query, st *rtree.SearchStats) ([]workload.Row, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	tree := f.trees[p.Tree]
	dim := tree.Dim()
	lo := make([]int64, dim)
	hi := make([]int64, dim)
	arity := p.View.Arity()
	for j := 0; j < arity; j++ {
		attr := p.View.Attrs[j]
		switch {
		case fixedAt(q, attr, &lo[j], &hi[j]):
		case rangeAt(q, attr, &lo[j], &hi[j]):
		default:
			lo[j], hi[j] = 1, math.MaxInt64
		}
	}
	// Coordinates beyond the view's arity stay [0,0], confining the search
	// to this view's region of the shared index space.
	groupPos := make([]int, len(q.Node))
	for i, a := range q.Node {
		pos := -1
		for j, va := range p.View.Attrs {
			if a == va {
				pos = j
				break
			}
		}
		if pos < 0 {
			return nil, 0, fmt.Errorf("core: attribute %q missing from %s", a, p.View)
		}
		groupPos[i] = pos
	}

	var scanned int64
	if len(q.Node) == arity {
		// The view's dimensions are exactly the query's group-by set, so
		// every point the search visits is a distinct group (a view's points
		// are unique by coordinates): nothing ever folds, and the rows can be
		// emitted directly without an aggregation map.
		var rows []workload.Row
		err := tree.SearchWithStats(lo, hi, func(coords, measures []int64) error {
			scanned++
			if scanned%cancelCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			row := workload.Row{
				Group: make([]int64, len(groupPos)),
				Sum:   measures[0],
				Count: measures[1],
			}
			for i, pos := range groupPos {
				row.Group[i] = coords[pos]
			}
			if len(measures) > 2 {
				row.Extra = append([]int64(nil), measures[2:]...)
			}
			rows = append(rows, row)
			return nil
		}, st)
		if err != nil {
			return nil, scanned, err
		}
		workload.SortRows(rows)
		return rows, scanned, nil
	}

	agg := workload.NewSchemaAggregator(len(q.Node), f.schema)
	group := make([]int64, len(q.Node))
	err := tree.SearchWithStats(lo, hi, func(coords, measures []int64) error {
		scanned++
		if scanned%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		for i, pos := range groupPos {
			group[i] = coords[pos]
		}
		agg.AddMeasures(group, measures)
		return nil
	}, st)
	if err != nil {
		return nil, scanned, err
	}
	return agg.Rows(), scanned, nil
}

// PlanInfo describes which placement the planner would use for q, for
// experiment reporting and tests.
type PlanInfo struct {
	Placement Placement
	EstLeaves float64
}

// Plan returns the planner's choice for q without executing it.
func (f *Forest) Plan(q workload.Query) (PlanInfo, error) {
	if err := q.Validate(); err != nil {
		return PlanInfo{}, err
	}
	best := f.choosePlacement(q)
	if best < 0 {
		return PlanInfo{}, fmt.Errorf("core: no placement covers %s", q)
	}
	p := &f.placements[best]
	return PlanInfo{Placement: *p, EstLeaves: f.placementCost(p, q)}, nil
}

// fixedAt narrows [lo,hi] to an equality predicate's value, if present.
func fixedAt(q workload.Query, attr lattice.Attr, lo, hi *int64) bool {
	v, ok := q.FixedValue(attr)
	if ok {
		*lo, *hi = v, v
	}
	return ok
}

// rangeAt narrows [lo,hi] to a range predicate's bounds, if present. The
// lower bound is clamped to 1 so the search stays inside the view's region
// of the shared index space (coordinate 0 belongs to lower-arity views).
func rangeAt(q workload.Query, attr lattice.Attr, lo, hi *int64) bool {
	r, ok := q.RangeFor(attr)
	if ok {
		*lo, *hi = r.Lo, r.Hi
		if *lo < 1 {
			*lo = 1
		}
	}
	return ok
}

// ExecuteBatch answers qs with up to parallelism concurrent workers. The
// forest is immutable once built and the buffer pool is sharded, so queries
// only contend on the pool shards their pages map to.
func (f *Forest) ExecuteBatch(qs []workload.Query, parallelism int) ([][]workload.Row, error) {
	if f.obs != nil {
		return workload.ExecuteBatchObserved(f, qs, parallelism, f.obs.Inflight, f.obs.Batches)
	}
	return workload.ExecuteBatch(f, qs, parallelism)
}

var _ workload.Engine = (*Forest)(nil)
