// Package core implements the paper's primary contribution: the Cubetree
// storage organization for ROLAP aggregate views. A set of materialized
// views (possibly including replicas of a view in several sort orders) is
// mapped by the SelectMapping algorithm onto a minimal forest of packed,
// compressed R-trees; the forest is bulk-loaded from sorted view data,
// answers slice queries through R-tree search, and is refreshed by
// merge-packing sorted deltas into a fresh forest with purely sequential
// I/O.
package core

import (
	"fmt"
	"sort"

	"cubetree/internal/lattice"
)

// TreeSpec describes one Cubetree chosen by SelectMapping: its
// dimensionality and the views assigned to it, ordered by increasing arity
// (which is also the pack order of their runs: lower-arity views have more
// zero coordinates and therefore sort first).
type TreeSpec struct {
	Dim   int
	Views []int // indexes into the input view slice
}

// Mapping is the result of SelectMapping.
type Mapping struct {
	Trees []TreeSpec
}

// TreeOf returns the index of the tree holding input view i, or -1.
func (m Mapping) TreeOf(i int) int {
	for t, spec := range m.Trees {
		for _, v := range spec.Views {
			if v == i {
				return t
			}
		}
	}
	return -1
}

// SelectMapping implements the paper's Figure 5 algorithm. Views are
// grouped by arity; while unmapped views remain, a new Cubetree is created
// with the dimensionality of the highest remaining arity and one view of
// each arity (where available) is mapped to it. The result uses the minimal
// number of trees such that no tree holds two views of the same arity, so
// every view occupies a distinct contiguous string of leaves.
//
// Views of arity 0 (the super-aggregate "none" view) are mapped to the
// origin point of the first tree, as in the paper's Section 3.
//
// The algorithm runs in linear time in the number of views.
func SelectMapping(views []lattice.View) Mapping {
	maxArity := 0
	for _, v := range views {
		if v.Arity() > maxArity {
			maxArity = v.Arity()
		}
	}
	// sets[i] holds (input indexes of) unmapped views of arity i, in input
	// order; extraction is FIFO so the mapping is deterministic.
	sets := make([][]int, maxArity+1)
	var zeros []int
	for i, v := range views {
		if v.Arity() == 0 {
			zeros = append(zeros, i)
			continue
		}
		sets[v.Arity()] = append(sets[v.Arity()], i)
	}

	var m Mapping
	remaining := func() int {
		for a := maxArity; a >= 1; a-- {
			if len(sets[a]) > 0 {
				return a
			}
		}
		return 0
	}
	for {
		arity := remaining()
		if arity == 0 {
			break
		}
		spec := TreeSpec{Dim: arity}
		for j := 1; j <= arity; j++ {
			if len(sets[j]) == 0 {
				continue
			}
			spec.Views = append(spec.Views, sets[j][0])
			sets[j] = sets[j][1:]
		}
		m.Trees = append(m.Trees, spec)
	}
	if len(zeros) > 0 {
		if len(m.Trees) == 0 {
			m.Trees = append(m.Trees, TreeSpec{Dim: 1})
		}
		// The origin run packs before every arity>=1 run, so the zero-arity
		// views go first on tree 0.
		m.Trees[0].Views = append(zeros, m.Trees[0].Views...)
	}
	// Within each tree, runs must be packed in increasing arity so leaf
	// order matches pack order.
	for t := range m.Trees {
		spec := &m.Trees[t]
		sort.SliceStable(spec.Views, func(a, b int) bool {
			return views[spec.Views[a]].Arity() < views[spec.Views[b]].Arity()
		})
	}
	return m
}

// PerViewMapping maps every view to its own Cubetree — the "map each view
// to a different Cubetree" extreme the paper contrasts SelectMapping
// against. It uses more trees (more non-leaf overhead, worse buffer hit
// ratio) but is useful as an ablation baseline.
func PerViewMapping(views []lattice.View) Mapping {
	var m Mapping
	for i, v := range views {
		dim := v.Arity()
		if dim == 0 {
			dim = 1
		}
		m.Trees = append(m.Trees, TreeSpec{Dim: dim, Views: []int{i}})
	}
	return m
}

// Validate checks mapping invariants against the input views: every view
// mapped exactly once, no tree with two views of the same arity, and every
// view's arity within its tree's dimensionality.
func (m Mapping) Validate(views []lattice.View) error {
	seen := make(map[int]bool)
	for t, spec := range m.Trees {
		arities := make(map[int]bool)
		for _, vi := range spec.Views {
			if vi < 0 || vi >= len(views) {
				return fmt.Errorf("core: tree %d references unknown view %d", t, vi)
			}
			if seen[vi] {
				return fmt.Errorf("core: view %s mapped twice", views[vi])
			}
			seen[vi] = true
			a := views[vi].Arity()
			if a > 0 && arities[a] {
				return fmt.Errorf("core: tree %d holds two views of arity %d", t, a)
			}
			arities[a] = true
			if a > spec.Dim {
				return fmt.Errorf("core: view %s (arity %d) exceeds tree %d dim %d", views[vi], a, t, spec.Dim)
			}
		}
	}
	if len(seen) != len(views) {
		return fmt.Errorf("core: %d of %d views mapped", len(seen), len(views))
	}
	return nil
}
