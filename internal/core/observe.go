package core

import (
	"context"
	"fmt"
	"time"

	"cubetree/internal/obs"
	"cubetree/internal/rtree"
	"cubetree/internal/workload"
)

// executeObserved is Execute with the observer attached: the query is
// counted, traced (routing decision, points scanned, per-query pool I/O
// delta), its latency recorded in the query histogram, and — when it crosses
// the slow-query threshold — logged with its I/O delta. The I/O delta is a
// before/after snapshot of the forest's shared Stats, so under concurrent
// queries it may include pages of overlapping queries (see
// docs/OBSERVABILITY.md).
//
// The span (and any slow-log entry) is tagged with the trace ID carried by
// ctx, so /debug/traces on this process can be filtered to one request.
// prof, when non-nil, additionally receives the EXPLAIN-ANALYZE breakdown;
// when nil the search runs without leaf counters, identical to before.
func (f *Forest) executeObserved(ctx context.Context, q workload.Query, prof *workload.QueryProfile) ([]workload.Row, error) {
	o := f.obs
	start := time.Now()
	before := f.stats.Snapshot()
	sp := o.Tracer.StartRootShort("query")
	sp.SetTraceID(obs.TraceIDFrom(ctx))
	sp.SetStringer("query", q)
	o.Queries.Inc()

	fail := func(err error) ([]workload.Row, error) {
		o.QueryErrors.Inc()
		sp.SetStr("error", err.Error())
		sp.End()
		o.QueryLatency.ObserveDuration(time.Since(start))
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return fail(err)
	}
	best := f.choosePlacement(q)
	if best < 0 {
		return fail(fmt.Errorf("%w: %s", ErrNoPlacement, q))
	}
	p := &f.placements[best]
	// &p.View: boxing the pointer avoids copying the View into the interface.
	sp.SetStringer("view", &p.View)
	sp.SetInt("tree", int64(p.Tree))

	var st *rtree.SearchStats
	if prof != nil {
		o.ProfiledQueries.Inc()
		st = new(rtree.SearchStats)
	}
	rows, scanned, err := f.executeOn(ctx, p, q, st)
	dur := time.Since(start)
	delta := f.stats.Snapshot().Sub(before)
	sp.SetInt("points_scanned", scanned)
	sp.SetInt("rows", int64(len(rows)))
	sp.SetInt("pool_hits", int64(delta.PoolHits))
	sp.SetInt("pool_misses", int64(delta.PoolMisses))
	if prof != nil {
		sp.SetInt("leaf_pages_read", st.LeafPagesRead)
		sp.SetInt("leaf_pages_skipped", st.LeafPagesSkipped)
		fillProfile(prof, p, rows, scanned, st, delta, dur)
	}
	if err != nil {
		o.QueryErrors.Inc()
		sp.SetStr("error", err.Error())
	}
	sp.End()
	o.PointsScanned.Add(uint64(scanned))
	o.QueryLatency.ObserveDuration(dur)
	if f.viewMetrics != nil {
		vm := &f.viewMetrics[best]
		vm.hits.Inc()
		vm.scanned.Add(uint64(scanned))
		vm.rows.Add(uint64(len(rows)))
	}
	if o.Slow.Admits(dur) {
		o.SlowQueries.Inc()
		o.Slow.Record(obs.SlowQuery{
			Time:     time.Now(),
			TraceID:  obs.TraceIDFrom(ctx),
			Query:    q.String(),
			View:     p.View.String(),
			Duration: dur,
			Scanned:  scanned,
			Rows:     len(rows),
			IO:       delta,
		})
	}
	return rows, err
}
