package core

import (
	"testing"

	"cubetree/internal/lattice"
	"cubetree/internal/obs"
	"cubetree/internal/pager"
	"cubetree/internal/workload"
)

// TestViewAnalyticsStorageInvariants pins the mapping analytics down:
// every view placement resolves to exactly one (tree, leaf run), and the
// per-view page and point counts partition the forest's totals.
func TestViewAnalyticsStorageInvariants(t *testing.T) {
	f, _ := buildTestForest(t, 0)
	vas := f.ViewAnalytics()
	if len(vas) != len(f.Placements()) {
		t.Fatalf("analytics entries = %d, placements = %d", len(vas), len(f.Placements()))
	}
	var sumPages, sumReads uint64
	var sumPoints int64
	for i, va := range vas {
		p := f.Placements()[i]
		if va.Tree < 0 || va.Tree >= f.Trees() {
			t.Fatalf("%s: tree %d out of range", va.View, va.Tree)
		}
		// The placement's run must appear exactly once among its tree's runs:
		// one view, one contiguous leaf run.
		matches := 0
		for _, r := range f.Tree(va.Tree).Runs() {
			if r == p.Run {
				matches++
			}
		}
		if matches != 1 {
			t.Fatalf("%s: run matched %d times in tree %d, want exactly 1", va.View, matches, va.Tree)
		}
		if va.Arity != p.View.Arity() {
			t.Fatalf("%s: arity %d, view arity %d", va.View, va.Arity, p.View.Arity())
		}
		if va.CompressionRatio <= 0 || va.CompressionRatio > 1 {
			t.Fatalf("%s: compression ratio %v outside (0,1]", va.View, va.CompressionRatio)
		}
		if va.RunPoints > 0 && va.RunPages == 0 {
			t.Fatalf("%s: %d points in zero pages", va.View, va.RunPoints)
		}
		sumPages += va.RunPages
		sumPoints += va.RunPoints
		sumReads += va.LeafPageReads
	}
	if sumPages != f.LeafPages() {
		t.Fatalf("per-view pages sum to %d, forest has %d leaf pages", sumPages, f.LeafPages())
	}
	if sumPoints != f.Points() {
		t.Fatalf("per-view points sum to %d, forest holds %d", sumPoints, f.Points())
	}
	if sumReads != 0 {
		t.Fatal("page reads attributed without an observer attached")
	}
}

// TestViewAnalyticsCounters checks that with an observer attached, query
// traffic is attributed to the placement that answered it — including the
// leaf-page reads observed at the buffer pool.
func TestViewAnalyticsCounters(t *testing.T) {
	f, _ := buildTestForest(t, 3)
	o := obs.New(obs.Options{})
	f.SetObserver(o)

	q := workload.Query{Node: []lattice.Attr{"custkey"}}
	rows, err := f.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Execute(q); err != nil {
		t.Fatal(err)
	}

	var hit *ViewAnalytics
	for i, va := range f.ViewAnalytics() {
		va := va
		if va.QueryHits > 0 {
			if hit != nil {
				t.Fatalf("two views credited for one query stream: %s and %s", hit.View, va.View)
			}
			hit = &va
		}
		_ = i
	}
	if hit == nil {
		t.Fatal("no view credited with the queries")
	}
	if hit.View != "V{custkey}" {
		t.Fatalf("credited view = %s, want V{custkey}", hit.View)
	}
	if hit.QueryHits != 2 {
		t.Fatalf("hits = %d, want 2", hit.QueryHits)
	}
	if hit.RowsReturned != 2*uint64(len(rows)) {
		t.Fatalf("rows returned = %d, want %d", hit.RowsReturned, 2*len(rows))
	}
	if hit.PointsScanned == 0 {
		t.Fatal("no points scanned recorded")
	}
	if hit.LeafPageReads == 0 {
		t.Fatal("no leaf-page reads attributed to the answering view")
	}

	// The same numbers must surface as labeled families in the registry.
	snap := o.Registry.Snapshot()
	fam, ok := snap.CounterVecs["view_query_hits_total"]
	if !ok {
		t.Fatalf("view_query_hits_total family missing: %v", snap.CounterVecs)
	}
	found := false
	for _, lv := range fam.Values {
		if len(lv.Labels) == 3 && lv.Labels[0] == "V{custkey}" && lv.Value == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("V{custkey} child not in family snapshot: %+v", fam.Values)
	}
	if _, ok := snap.GaugeVecs["view_run_leaf_pages"]; !ok {
		t.Fatal("view_run_leaf_pages family missing")
	}

	// Detaching tears the attribution down and stops the counters.
	f.SetObserver(nil)
	before := hit.LeafPageReads
	if _, err := f.Execute(q); err != nil {
		t.Fatal(err)
	}
	for _, va := range f.ViewAnalytics() {
		if va.QueryHits != 0 || va.LeafPageReads != 0 {
			t.Fatalf("analytics counters nonzero after detach: %+v", va)
		}
	}
	_ = before
}

// TestTreeAttributorBoundaries exercises the binary search directly: ids
// below, between, inside, and above the runs.
func TestTreeAttributorBoundaries(t *testing.T) {
	mkvm := func() *viewMetrics {
		return &viewMetrics{
			hits: &obs.Counter{}, scanned: &obs.Counter{}, rows: &obs.Counter{},
			pageReads: &obs.Counter{}, pageMisses: &obs.Counter{},
		}
	}
	a, b := mkvm(), mkvm()
	attr := &treeAttributor{ranges: []runRange{
		{lo: 2, hi: 4, vm: a},
		{lo: 7, hi: 7, vm: b},
	}}
	for _, id := range []uint32{0, 1, 5, 6, 8, 100} {
		attr.PageAccess(pager.PageID(id), true)
	}
	if a.pageReads.Value() != 0 || b.pageReads.Value() != 0 {
		t.Fatalf("out-of-run ids attributed: a=%d b=%d", a.pageReads.Value(), b.pageReads.Value())
	}
	attr.PageAccess(pager.PageID(2), true)
	attr.PageAccess(pager.PageID(3), false)
	attr.PageAccess(pager.PageID(4), true)
	attr.PageAccess(pager.PageID(7), false)
	if a.pageReads.Value() != 3 || a.pageMisses.Value() != 1 {
		t.Fatalf("run a reads/misses = %d/%d, want 3/1", a.pageReads.Value(), a.pageMisses.Value())
	}
	if b.pageReads.Value() != 1 || b.pageMisses.Value() != 1 {
		t.Fatalf("run b reads/misses = %d/%d, want 1/1", b.pageReads.Value(), b.pageMisses.Value())
	}
}
