package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"cubetree/internal/cube"
	"cubetree/internal/pager"
	"cubetree/internal/rtree"
)

// MergeUpdate implements the paper's bulk incremental update (Figure 15):
// for every view run, the old tree's sorted leaves and the view's sorted
// delta are merge-packed into a fresh forest written to newDir with purely
// sequential I/O and linear total time. The old forest remains usable (and
// open) so that queries can continue against it until the switch-over; the
// caller typically closes and removes it afterwards.
//
// deltas maps View.OrderKey() to that placement's sorted delta data (the
// same pack order used at build time; cube.Compute and cube.Reorder produce
// it). Placements without a delta are copied unchanged. Deltas are combined
// into existing points by summing measures.
func (f *Forest) MergeUpdate(newDir string, deltas map[string]*cube.ViewData, opts BuildOptions) (*Forest, error) {
	if opts.PoolPages <= 0 {
		opts.PoolPages = f.poolPages
	}
	if opts.Fanout == 0 {
		opts.Fanout = f.fanout
	}
	if opts.Stats == nil {
		opts.Stats = f.stats
	}
	if opts.Domains == nil {
		opts.Domains = f.domains
	}
	if opts.PackFormat == 0 {
		// Inherit the old forest's format; catalogs predating the format
		// field fall through to the default, upgrading on refresh.
		opts.PackFormat = f.packFormat
	}
	if opts.PackFormat == 0 {
		opts.PackFormat = rtree.DefaultFormat
	}
	if err := os.MkdirAll(newDir, 0o755); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	nf := &Forest{
		dir:        newDir,
		domains:    opts.Domains,
		schema:     f.schema,
		stats:      opts.Stats,
		poolPages:  opts.PoolPages,
		fanout:     opts.Fanout,
		packFormat: opts.PackFormat,
	}
	// Group placements by tree, preserving run order.
	byTree := make(map[int][]Placement)
	for _, p := range f.placements {
		byTree[p.Tree] = append(byTree[p.Tree], p)
	}
	for t := range f.trees {
		old := f.trees[t]
		tsp := opts.Span.Child("merge-tree")
		tsp.SetInt("tree", int64(t))
		path := filepath.Join(newDir, fmt.Sprintf("tree%d.ct", t))
		pf, err := pager.Create(path, opts.Stats)
		if err != nil {
			tsp.End()
			nf.Close()
			return nil, err
		}
		pool := pager.NewPool(pf, opts.PoolPages)
		b, err := rtree.NewBuilder(pool, old.Dim(), rtree.Options{
			Measures: f.schema.Len(), Fanout: opts.Fanout, PackFormat: opts.PackFormat})
		if err != nil {
			tsp.End()
			pool.Close()
			nf.Close()
			return nil, err
		}
		for _, p := range byTree[t] {
			arity := p.View.Arity()
			if err := b.BeginRun(arity); err != nil {
				pool.Close()
				nf.Close()
				return nil, err
			}
			oldIt := old.RunIterator(p.Run)
			var deltaIt rtree.PointIterator = &rtree.SlicePoints{}
			var reader *cube.TupleReader
			if vd, ok := deltas[p.View.OrderKey()]; ok {
				reader, err = vd.Open()
				if err != nil {
					oldIt.Close()
					pool.Close()
					nf.Close()
					return nil, err
				}
				deltaIt = &tupleReaderPoints{r: reader, arity: arity, dim: old.Dim(), nm: f.schema.Len()}
			}
			err = rtree.MergeRun(b, arity, oldIt, deltaIt, func(dst, src []int64) {
				f.schema.Fold(dst, src)
			})
			oldIt.Close()
			if reader != nil {
				reader.Close()
			}
			if err != nil {
				pool.Close()
				nf.Close()
				return nil, err
			}
			run, err := b.EndRun()
			if err != nil {
				pool.Close()
				nf.Close()
				return nil, err
			}
			nf.placements = append(nf.placements, Placement{View: p.View, Tree: t, Run: run})
		}
		tree, err := b.Finish()
		if err != nil {
			tsp.End()
			pool.Close()
			nf.Close()
			return nil, err
		}
		if err := tree.Close(); err != nil {
			tsp.End()
			pool.Close()
			nf.Close()
			return nil, err
		}
		// Durable before the new generation's catalog can name it.
		fsp := tsp.Child("fsync")
		if err := pf.Sync(); err != nil {
			fsp.End()
			tsp.End()
			pool.Close()
			nf.Close()
			return nil, err
		}
		fsp.End()
		tsp.SetInt("points", tree.Count())
		tsp.SetInt("pages", int64(tree.Pages()))
		tsp.End()
		nf.trees = append(nf.trees, tree)
		nf.pools = append(nf.pools, pool)
	}
	if err := nf.writeCatalog(); err != nil {
		nf.Close()
		return nil, err
	}
	return nf, nil
}

// tupleReaderPoints adapts a cube.TupleReader ([attrs..., measures...]) to
// an rtree.PointIterator with zero-padded coordinates.
type tupleReaderPoints struct {
	r        *cube.TupleReader
	arity    int
	dim      int
	nm       int // measures per point
	coords   []int64
	measures []int64
	done     bool
}

func (a *tupleReaderPoints) Next() ([]int64, []int64, error) {
	if a.done {
		return nil, nil, rtree.ErrDone
	}
	tuple, err := a.r.Next()
	if err == io.EOF {
		a.done = true
		return nil, nil, rtree.ErrDone
	}
	if err != nil {
		return nil, nil, err
	}
	if a.coords == nil {
		a.coords = make([]int64, a.dim)
		a.measures = make([]int64, a.nm)
	}
	for j := 0; j < a.arity; j++ {
		a.coords[j] = tuple[j]
	}
	for j := a.arity; j < a.dim; j++ {
		a.coords[j] = 0
	}
	copy(a.measures, tuple[a.arity:a.arity+a.nm])
	return a.coords, a.measures, nil
}

func (a *tupleReaderPoints) Close() error { return nil }

// DeltasFor prepares the per-placement delta map for MergeUpdate from
// per-view deltas keyed by View.Key(): each placement (including replicas
// in other sort orders) gets its delta re-sorted into its own pack order.
// scratch holds intermediate files.
func (f *Forest) DeltasFor(scratch string, perView map[string]*cube.ViewData) (map[string]*cube.ViewData, error) {
	out := make(map[string]*cube.ViewData)
	for _, p := range f.placements {
		vd, ok := perView[p.View.Key()]
		if !ok {
			continue
		}
		if vd.View.OrderKey() == p.View.OrderKey() {
			out[p.View.OrderKey()] = vd
			continue
		}
		re, err := cube.Reorder(scratch, vd, p.View.Attrs, cube.Options{Stats: f.stats})
		if err != nil {
			return nil, err
		}
		out[p.View.OrderKey()] = re
	}
	return out, nil
}
