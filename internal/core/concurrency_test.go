package core

import (
	"sync"
	"testing"

	"cubetree/internal/lattice"
	"cubetree/internal/workload"
)

func attrs(names ...lattice.Attr) []lattice.Attr { return names }

// TestConcurrentQueries exercises parallel Execute calls against one
// forest; the buffer pool is the only shared mutable state and must keep
// results correct under contention. Run with -race.
func TestConcurrentQueries(t *testing.T) {
	f, _ := buildTestForest(t, 0)
	queries := []workload.Query{
		{},
		{Node: attrs("partkey", "suppkey"), Fixed: []workload.Pred{{Attr: "partkey", Value: 1}}},
		{Node: attrs("custkey"), Fixed: []workload.Pred{{Attr: "custkey", Value: 3}}},
		{Node: attrs("partkey", "suppkey", "custkey"), Fixed: []workload.Pred{{Attr: "suppkey", Value: 2}}},
	}
	want := make([][]workload.Row, len(queries))
	for i, q := range queries {
		rows, err := f.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rows
	}

	const goroutines = 8
	const iters = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi := (g + i) % len(queries)
				rows, err := f.Execute(queries[qi])
				if err != nil {
					errs <- err
					return
				}
				if !workload.EqualRows(rows, want[qi]) {
					errs <- errMismatch
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent query result mismatch" }
