package core

import (
	"sort"
	"strconv"

	"cubetree/internal/enc"
	"cubetree/internal/obs"
	"cubetree/internal/pager"
	"cubetree/internal/rtree"
)

// Per-view analytics: when an observer is attached, every placement gets a
// pre-resolved set of labeled metric children (view/tree/arity labels), the
// static storage gauges for its leaf run are published, and each tree's
// buffer pool gets an access observer that attributes leaf-page reads back
// to the run — and therefore the view — that owns the page. All hot-path
// updates are single atomic adds on pointers resolved here, and with no
// observer attached none of this machinery exists (viewMetrics is nil and
// the pools carry no access observer), keeping the uninstrumented query
// path allocation-free.

// viewMetrics holds one placement's pre-resolved metric children.
type viewMetrics struct {
	hits       *obs.Counter
	scanned    *obs.Counter
	rows       *obs.Counter
	pageReads  *obs.Counter
	pageMisses *obs.Counter
}

// attachAnalytics builds the per-view instrumentation for the current
// placements. Called from SetObserver; o == nil tears everything down.
func (f *Forest) attachAnalytics(o *obs.Observer) {
	for _, p := range f.pools {
		if p != nil {
			p.SetAccessObserver(nil)
		}
	}
	if o == nil {
		f.viewMetrics = nil
		return
	}
	reg := o.Registry
	hits := reg.CounterVec("view_query_hits_total", "view", "tree", "arity")
	scanned := reg.CounterVec("view_points_scanned_total", "view", "tree", "arity")
	rows := reg.CounterVec("view_rows_returned_total", "view", "tree", "arity")
	reads := reg.CounterVec("view_leaf_page_reads_total", "view", "tree", "arity")
	misses := reg.CounterVec("view_leaf_page_misses_total", "view", "tree", "arity")
	runPages := reg.GaugeVec("view_run_leaf_pages", "view", "tree", "arity")
	runPoints := reg.GaugeVec("view_run_points", "view", "tree", "arity")
	ratio := reg.GaugeVec("view_compression_ratio", "view", "tree", "arity")
	leafFormat := reg.GaugeVec("view_run_leaf_format", "view", "tree", "arity")
	ptsPerPage := reg.GaugeVec("view_points_per_leaf_page", "view", "tree", "arity")
	bytesPerPoint := reg.GaugeVec("view_encoded_bytes_per_point", "view", "tree", "arity")

	f.viewMetrics = make([]viewMetrics, len(f.placements))
	perTree := make([][]runRange, len(f.trees))
	for i := range f.placements {
		p := &f.placements[i]
		view := p.View.String()
		tree := strconv.Itoa(p.Tree)
		arity := strconv.Itoa(p.Run.Arity)
		vm := &f.viewMetrics[i]
		vm.hits = hits.With(view, tree, arity)
		vm.scanned = scanned.With(view, tree, arity)
		vm.rows = rows.With(view, tree, arity)
		vm.pageReads = reads.With(view, tree, arity)
		vm.pageMisses = misses.With(view, tree, arity)

		// Static storage gauges, captured from the packed run. These are
		// re-published on every attach, so a merge-pack refresh followed by
		// SetObserver on the new forest refreshes them.
		runPages.With(view, tree, arity).Set(float64(runLeafPages(p.Run)))
		runPoints.With(view, tree, arity).Set(float64(p.Run.Points))
		ratio.With(view, tree, arity).Set(f.compressionRatio(p))
		format, ppp, bpp := f.runShape(p)
		leafFormat.With(view, tree, arity).Set(float64(format))
		ptsPerPage.With(view, tree, arity).Set(ppp)
		bytesPerPoint.With(view, tree, arity).Set(bpp)

		if p.Run.FirstLeaf <= p.Run.LastLeaf {
			perTree[p.Tree] = append(perTree[p.Tree],
				runRange{lo: p.Run.FirstLeaf, hi: p.Run.LastLeaf, vm: vm})
		}
	}
	for t, ranges := range perTree {
		if len(ranges) == 0 || f.pools[t] == nil {
			continue
		}
		sort.Slice(ranges, func(i, j int) bool { return ranges[i].lo < ranges[j].lo })
		f.pools[t].SetAccessObserver(&treeAttributor{ranges: ranges})
	}
}

// compressionRatio is the arity compression of a placement: bytes per stored
// point relative to an uncompressed point carrying all of the tree's
// coordinates. Lower is better; 1.0 means the view's arity equals the tree
// dimensionality, so nothing is saved.
func (f *Forest) compressionRatio(p *Placement) float64 {
	t := f.trees[p.Tree]
	full := enc.TupleSize(t.Dim() + t.Measures())
	if full == 0 {
		return 1
	}
	return float64(enc.TupleSize(p.Run.Arity+t.Measures())) / float64(full)
}

// runShape summarizes the physical shape of a placement's leaf run: the
// leaf format actually on disk, the packing density (points per leaf page),
// and the effective encoded bytes per point — total page bytes the run
// occupies divided by its points. The last two are how the v2 columnar
// layout's space win shows up in /debug/warehouse without re-reading the
// run: v2 packs more points per page, so bytes per point drops.
func (f *Forest) runShape(p *Placement) (format int, pointsPerPage, bytesPerPoint float64) {
	format, err := f.trees[p.Tree].RunFormat(p.Run)
	if err != nil {
		format = 0
	}
	pages := runLeafPages(p.Run)
	if pages > 0 && p.Run.Points > 0 {
		pointsPerPage = float64(p.Run.Points) / float64(pages)
		bytesPerPoint = float64(pages) * float64(pager.PageSize) / float64(p.Run.Points)
	}
	return format, pointsPerPage, bytesPerPoint
}

// runLeafPages returns the number of leaf pages a run occupies.
func runLeafPages(r rtree.RunInfo) uint64 {
	if r.LastLeaf < r.FirstLeaf {
		return 0
	}
	return uint64(r.LastLeaf - r.FirstLeaf + 1)
}

// runRange maps one leaf run's page interval to its metrics. Runs within a
// tree are disjoint, so a sorted slice with binary search resolves any page
// id in O(log runs) with no allocation.
type runRange struct {
	lo, hi pager.PageID
	vm     *viewMetrics
}

// treeAttributor implements pager.AccessObserver for one tree's pool,
// charging each leaf-page fetch to the run that owns the page. Inner-node
// pages fall between or after the runs' leaf intervals and are ignored.
type treeAttributor struct {
	ranges []runRange // sorted by lo, disjoint
}

func (a *treeAttributor) PageAccess(id pager.PageID, hit bool) {
	lo, hi := 0, len(a.ranges)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a.ranges[mid].hi < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(a.ranges) || id < a.ranges[lo].lo {
		return
	}
	vm := a.ranges[lo].vm
	vm.pageReads.Inc()
	if !hit {
		vm.pageMisses.Inc()
	}
}

// ViewAnalytics is a point-in-time summary of one view placement: its static
// storage shape and the workload counters accumulated since the observer was
// attached. RunPages of every placement sum to the forest's LeafPages, and
// LeafPageReads across views is the forest's leaf-page fetch traffic — the
// raw material for the /debug/warehouse I/O heatmap.
type ViewAnalytics struct {
	View             string  `json:"view"`
	Tree             int     `json:"tree"`
	Arity            int     `json:"arity"`
	RunPages         uint64  `json:"run_leaf_pages"`
	RunPoints        int64   `json:"run_points"`
	CompressionRatio float64 `json:"compression_ratio"`
	LeafFormat       int     `json:"leaf_format"`
	PointsPerPage    float64 `json:"points_per_leaf_page"`
	BytesPerPoint    float64 `json:"encoded_bytes_per_point"`
	QueryHits        uint64  `json:"query_hits"`
	PointsScanned    uint64  `json:"points_scanned"`
	RowsReturned     uint64  `json:"rows_returned"`
	LeafPageReads    uint64  `json:"leaf_page_reads"`
	LeafPageMisses   uint64  `json:"leaf_page_misses"`
}

// ViewAnalytics reports per-view storage and workload analytics, one entry
// per placement in placement order. Storage fields are always populated;
// workload counters are zero unless an observer is attached.
func (f *Forest) ViewAnalytics() []ViewAnalytics {
	out := make([]ViewAnalytics, len(f.placements))
	for i := range f.placements {
		p := &f.placements[i]
		va := ViewAnalytics{
			View:             p.View.String(),
			Tree:             p.Tree,
			Arity:            p.Run.Arity,
			RunPages:         runLeafPages(p.Run),
			RunPoints:        p.Run.Points,
			CompressionRatio: f.compressionRatio(p),
		}
		va.LeafFormat, va.PointsPerPage, va.BytesPerPoint = f.runShape(p)
		if f.viewMetrics != nil {
			vm := &f.viewMetrics[i]
			va.QueryHits = vm.hits.Value()
			va.PointsScanned = vm.scanned.Value()
			va.RowsReturned = vm.rows.Value()
			va.LeafPageReads = vm.pageReads.Value()
			va.LeafPageMisses = vm.pageMisses.Value()
		}
		out[i] = va
	}
	return out
}
