package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cubetree/internal/cube"
	"cubetree/internal/lattice"
	"cubetree/internal/obs"
	"cubetree/internal/pager"
	"cubetree/internal/rtree"
)

// Placement records where one view (or view replica) lives: which tree and
// which leaf run. The view's attribute order is its coordinate mapping —
// attribute i is coordinate i of the tree.
type Placement struct {
	View lattice.View
	Tree int
	Run  rtree.RunInfo
}

// BuildOptions configures forest construction.
type BuildOptions struct {
	// PoolPages is the buffer pool capacity per tree (default 256 pages).
	PoolPages int
	// ExhaustionWait bounds the buffer pools' pinned-frame wait before
	// reporting pager.ErrPoolExhausted (0 = pager.DefaultExhaustionWait).
	ExhaustionWait time.Duration
	// Fanout caps node capacity for tests (0 = page capacity).
	Fanout int
	// Domains provides attribute domain sizes for the query planner's
	// selectivity estimates. Optional but strongly recommended.
	Domains map[lattice.Attr]int64
	// Stats receives the forest's page I/O accounting. May be nil.
	Stats *pager.Stats
	// Workers bounds how many trees are packed concurrently (default 1;
	// sequential packing matches the paper's single-disk setting and keeps
	// sequential-I/O accounting faithful).
	Workers int
	// Mapping overrides the SelectMapping algorithm with an explicit
	// view-to-tree assignment (e.g. PerViewMapping for ablations). It must
	// validate against the build's sources.
	Mapping *Mapping
	// Span, when non-nil, receives one child span per packed tree (with a
	// nested fsync span), tracing the merge-pack phase of a refresh.
	Span *obs.Span
	// PackFormat selects the leaf page layout (rtree.FormatV1 or
	// rtree.FormatV2). Zero means rtree.DefaultFormat.
	PackFormat int
}

// Forest is a collection of Cubetrees materializing a set of views, the
// unit the paper calls "a forest of Cubetrees".
type Forest struct {
	dir        string
	trees      []*rtree.Tree
	pools      []*pager.Pool
	placements []Placement
	domains    map[lattice.Attr]int64
	schema     lattice.Schema
	stats      *pager.Stats
	poolPages  int
	fanout     int
	packFormat int
	obs        *obs.Observer
	// viewMetrics is parallel to placements; non-nil only while an observer
	// is attached (see analytics.go).
	viewMetrics []viewMetrics
}

// SetObserver attaches an observability sink: every subsequent Execute is
// traced, timed, and slow-logged, per-view metric families are registered,
// and the buffer pools attribute leaf-page reads to the views that own the
// pages. A nil observer (the default) keeps the query path entirely
// uninstrumented. Not safe to call concurrently with queries; attach before
// serving.
func (f *Forest) SetObserver(o *obs.Observer) {
	f.obs = o
	f.attachAnalytics(o)
}

// Observer returns the attached observability sink, or nil.
func (f *Forest) Observer() *obs.Observer { return f.obs }

// SetExhaustionWait retunes every tree pool's pinned-frame wait bound; d <= 0
// restores the pager default. Safe on a live forest.
func (f *Forest) SetExhaustionWait(d time.Duration) {
	for _, p := range f.pools {
		if p != nil {
			p.SetExhaustionWait(d)
		}
	}
}

// PoolInfos reports buffer-pool occupancy per tree, for debug endpoints.
func (f *Forest) PoolInfos() []pager.PoolInfo {
	out := make([]pager.PoolInfo, 0, len(f.pools))
	for _, p := range f.pools {
		if p != nil {
			out = append(out, p.Info())
		}
	}
	return out
}

// Schema returns the measure schema stored per point.
func (f *Forest) Schema() lattice.Schema { return append(lattice.Schema(nil), f.schema...) }

const catalogFile = "forest.json"

type catalogJSON struct {
	Trees      []string         `json:"trees"`
	Placements []placementJSON  `json:"placements"`
	Domains    map[string]int64 `json:"domains"`
	Schema     []string         `json:"schema,omitempty"`
	PoolPages  int              `json:"pool_pages"`
	Fanout     int              `json:"fanout,omitempty"`
	PackFormat int              `json:"pack_format,omitempty"`
}

type placementJSON struct {
	Name  string   `json:"name,omitempty"`
	Attrs []string `json:"attrs"`
	Tree  int      `json:"tree"`
	Run   int      `json:"run"`
}

// Build bulk-loads a forest in dir from sorted view data. Each source must
// be in pack order of its own attribute sequence (cube.Compute produces
// exactly that); replicas in other sort orders are passed as additional
// sources (see cube.Reorder). Coordinates must be strictly positive.
func Build(dir string, sources []*cube.ViewData, opts BuildOptions) (*Forest, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("core: no views to build")
	}
	if opts.PoolPages <= 0 {
		opts.PoolPages = 256
	}
	if opts.Stats == nil {
		opts.Stats = &pager.Stats{}
	}
	if opts.PackFormat == 0 {
		opts.PackFormat = rtree.DefaultFormat
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	views := make([]lattice.View, len(sources))
	schema := sources[0].Schema
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	for i, s := range sources {
		views[i] = s.View
		if !s.Schema.Equal(schema) {
			return nil, fmt.Errorf("core: view %s schema %v differs from %v", s.View, s.Schema, schema)
		}
	}
	mapping := SelectMapping(views)
	if opts.Mapping != nil {
		mapping = *opts.Mapping
	}
	if err := mapping.Validate(views); err != nil {
		return nil, err
	}

	f := &Forest{
		dir:        dir,
		domains:    opts.Domains,
		schema:     schema,
		stats:      opts.Stats,
		poolPages:  opts.PoolPages,
		fanout:     opts.Fanout,
		packFormat: opts.PackFormat,
	}
	results := make([]treeBuild, len(mapping.Trees))
	buildOne := func(t int) error {
		spec := mapping.Trees[t]
		tsp := opts.Span.Child("pack-tree")
		tsp.SetInt("tree", int64(t))
		defer tsp.End()
		path := filepath.Join(dir, fmt.Sprintf("tree%d.ct", t))
		pf, err := pager.Create(path, opts.Stats)
		if err != nil {
			return err
		}
		pool := pager.NewPoolConfig(pf, opts.PoolPages, pager.Config{ExhaustionWait: opts.ExhaustionWait})
		fail := func(err error) error {
			pool.Close()
			return err
		}
		b, err := rtree.NewBuilder(pool, spec.Dim, rtree.Options{
			Measures: schema.Len(), Fanout: opts.Fanout, PackFormat: opts.PackFormat})
		if err != nil {
			return fail(err)
		}
		for _, vi := range spec.Views {
			src := sources[vi]
			arity := src.View.Arity()
			if err := b.BeginRun(arity); err != nil {
				return fail(err)
			}
			addErr := src.Iterate(func(tuple []int64) error {
				for j := 0; j < arity; j++ {
					if tuple[j] < 1 {
						return fmt.Errorf("core: view %s has non-positive coordinate %d", src.View, tuple[j])
					}
				}
				return b.Add(tuple[:arity], tuple[arity:arity+schema.Len()])
			})
			if addErr != nil {
				return fail(addErr)
			}
			run, err := b.EndRun()
			if err != nil {
				return fail(err)
			}
			results[t].placements = append(results[t].placements,
				Placement{View: src.View, Tree: t, Run: run})
		}
		tree, err := b.Finish()
		if err != nil {
			return fail(err)
		}
		if err := tree.Close(); err != nil { // flush sequentially to disk
			return fail(err)
		}
		// Fsync before the catalog can reference this tree: the catalog
		// rename is the commit point, so everything it names must already
		// be durable.
		fsp := tsp.Child("fsync")
		if err := pf.Sync(); err != nil {
			fsp.End()
			return fail(err)
		}
		fsp.End()
		tsp.SetInt("points", tree.Count())
		tsp.SetInt("pages", int64(tree.Pages()))
		results[t].tree = tree
		results[t].pool = pool
		return nil
	}
	// Trees are independent; build them concurrently when Workers > 1.
	if err := runTreeBuilds(opts.Workers, len(mapping.Trees), buildOne); err != nil {
		for _, r := range results {
			if r.pool != nil {
				r.pool.Close()
			}
		}
		f.Close()
		return nil, err
	}
	for _, r := range results {
		f.trees = append(f.trees, r.tree)
		f.pools = append(f.pools, r.pool)
		f.placements = append(f.placements, r.placements...)
	}
	if err := f.writeCatalog(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// treeBuild collects one tree's build outputs so parallel builds keep the
// catalog deterministic (placements in tree order).
type treeBuild struct {
	tree       *rtree.Tree
	pool       *pager.Pool
	placements []Placement
}

// runTreeBuilds runs buildOne(0..n-1) with up to workers goroutines.
func runTreeBuilds(workers, n int, buildOne func(int) error) error {
	if workers <= 1 || n <= 1 {
		for t := 0; t < n; t++ {
			if err := buildOne(t); err != nil {
				return err
			}
		}
		return nil
	}
	sem := make(chan struct{}, workers)
	errs := make(chan error, n)
	for t := 0; t < n; t++ {
		t := t
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			errs <- buildOne(t)
		}()
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (f *Forest) writeCatalog() error {
	cat := catalogJSON{PoolPages: f.poolPages, Fanout: f.fanout, PackFormat: f.packFormat,
		Schema: f.schema.Strings(), Domains: map[string]int64{}}
	for a, d := range f.domains {
		cat.Domains[string(a)] = d
	}
	for t := range f.trees {
		cat.Trees = append(cat.Trees, fmt.Sprintf("tree%d.ct", t))
	}
	for _, p := range f.placements {
		attrs := make([]string, len(p.View.Attrs))
		for i, a := range p.View.Attrs {
			attrs[i] = string(a)
		}
		// Locate the run index within its tree.
		runIdx := -1
		for i, r := range f.trees[p.Tree].Runs() {
			if r == p.Run {
				runIdx = i
				break
			}
		}
		if runIdx < 0 {
			return fmt.Errorf("core: placement %s run not found in tree %d", p.View, p.Tree)
		}
		cat.Placements = append(cat.Placements, placementJSON{
			Name: p.View.Name, Attrs: attrs, Tree: p.Tree, Run: runIdx,
		})
	}
	data, err := json.MarshalIndent(cat, "", "  ")
	if err != nil {
		return err
	}
	return pager.WriteFileAtomic(filepath.Join(f.dir, catalogFile), data, 0o644)
}

// Open loads a previously built forest from dir. stats may be nil.
func Open(dir string, stats *pager.Stats) (*Forest, error) {
	data, err := os.ReadFile(filepath.Join(dir, catalogFile))
	if err != nil {
		return nil, fmt.Errorf("core: open forest: %w", err)
	}
	var cat catalogJSON
	if err := json.Unmarshal(data, &cat); err != nil {
		return nil, fmt.Errorf("core: parse catalog: %w", err)
	}
	if stats == nil {
		stats = &pager.Stats{}
	}
	schema, err := lattice.ParseSchema(cat.Schema)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	f := &Forest{
		dir:        dir,
		domains:    map[lattice.Attr]int64{},
		schema:     schema,
		stats:      stats,
		poolPages:  cat.PoolPages,
		fanout:     cat.Fanout,
		packFormat: cat.PackFormat,
	}
	for a, d := range cat.Domains {
		f.domains[lattice.Attr(a)] = d
	}
	if f.poolPages <= 0 {
		f.poolPages = 256
	}
	for _, name := range cat.Trees {
		pf, err := pager.Open(filepath.Join(dir, name), stats)
		if err != nil {
			f.Close()
			return nil, err
		}
		pool := pager.NewPool(pf, f.poolPages)
		tree, err := rtree.Open(pool)
		if err != nil {
			pool.Close()
			f.Close()
			return nil, err
		}
		f.trees = append(f.trees, tree)
		f.pools = append(f.pools, pool)
	}
	for _, p := range cat.Placements {
		if p.Tree < 0 || p.Tree >= len(f.trees) {
			f.Close()
			return nil, fmt.Errorf("core: catalog references tree %d of %d", p.Tree, len(f.trees))
		}
		runs := f.trees[p.Tree].Runs()
		if p.Run < 0 || p.Run >= len(runs) {
			f.Close()
			return nil, fmt.Errorf("core: catalog references run %d of %d", p.Run, len(runs))
		}
		attrs := make([]lattice.Attr, len(p.Attrs))
		for i, a := range p.Attrs {
			attrs[i] = lattice.Attr(a)
		}
		f.placements = append(f.placements, Placement{
			View: lattice.View{Name: p.Name, Attrs: attrs},
			Tree: p.Tree,
			Run:  runs[p.Run],
		})
	}
	return f, nil
}

// Dir returns the forest's directory.
func (f *Forest) Dir() string { return f.dir }

// Placements returns every view placement (including replicas).
func (f *Forest) Placements() []Placement {
	return append([]Placement(nil), f.placements...)
}

// Trees returns the number of Cubetrees in the forest.
func (f *Forest) Trees() int { return len(f.trees) }

// Tree returns the i-th Cubetree.
func (f *Forest) Tree(i int) *rtree.Tree { return f.trees[i] }

// Stats returns the forest's I/O accounting sink.
func (f *Forest) Stats() *pager.Stats { return f.stats }

// PackFormat returns the leaf format the forest was built with. Zero on
// forests whose catalog predates the format field; MergeUpdate treats that
// as "use the default".
func (f *Forest) PackFormat() int { return f.packFormat }

// Domains returns the attribute domains known to the planner.
func (f *Forest) Domains() map[lattice.Attr]int64 { return f.domains }

// TotalBytes returns the on-disk size of all trees.
func (f *Forest) TotalBytes() int64 {
	var n int64
	for _, t := range f.trees {
		n += t.Bytes()
	}
	return n
}

// TotalPages and LeafPages summarize the forest's page usage; their ratio
// demonstrates the paper's claim that ~90% of pages are compressed leaves.
func (f *Forest) TotalPages() uint64 {
	var n uint64
	for _, t := range f.trees {
		n += uint64(t.Pages())
	}
	return n
}

// LeafPages returns the number of leaf pages across all trees.
func (f *Forest) LeafPages() uint64 {
	var n uint64
	for _, t := range f.trees {
		n += uint64(t.LeafPages())
	}
	return n
}

// Points returns the total number of stored aggregate points.
func (f *Forest) Points() int64 {
	var n int64
	for _, t := range f.trees {
		n += t.Count()
	}
	return n
}

// Validate checks the structural invariants of every tree (packing order,
// MBR containment, counts) plus catalog consistency (each placement's run
// exists, point totals add up). Intended for tests and the CLI tools'
// -verify flags; cost is a full sequential read of the forest.
func (f *Forest) Validate() error {
	var placed int64
	for _, p := range f.placements {
		if p.Tree < 0 || p.Tree >= len(f.trees) {
			return fmt.Errorf("core: placement %s references tree %d of %d", p.View, p.Tree, len(f.trees))
		}
		found := false
		for _, r := range f.trees[p.Tree].Runs() {
			if r == p.Run {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("core: placement %s run missing from tree %d", p.View, p.Tree)
		}
		if p.Run.Arity != p.View.Arity() {
			return fmt.Errorf("core: placement %s arity %d, run arity %d",
				p.View, p.View.Arity(), p.Run.Arity)
		}
		placed += p.Run.Points
	}
	if placed != f.Points() {
		return fmt.Errorf("core: placements cover %d points, trees hold %d", placed, f.Points())
	}
	for i, t := range f.trees {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("core: tree %d: %w", i, err)
		}
	}
	return nil
}

// Close flushes and closes every tree.
func (f *Forest) Close() error {
	var first error
	for i, t := range f.trees {
		if t != nil {
			if err := t.Close(); err != nil && first == nil {
				first = err
			}
		}
		if f.pools[i] != nil {
			if err := f.pools[i].Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	f.trees = nil
	f.pools = nil
	return first
}

// Remove closes the forest and deletes its files. The removal goes through
// the pager's fault-injection layer so crash tests see interrupted cleanups.
func (f *Forest) Remove() error {
	dir := f.dir
	f.Close()
	return pager.RemoveAll(dir)
}
