package core

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"testing/quick"

	"cubetree/internal/cube"
	"cubetree/internal/lattice"
	"cubetree/internal/workload"
)

func v(attrs ...lattice.Attr) lattice.View { return lattice.View{Attrs: attrs} }

func TestSelectMappingPaperExample(t *testing.T) {
	// The nine views of the paper's Figure 6, with the arities shown in
	// Figure 7: S1 = {V1,V6,V8}, S2 = {V2,V7,V9}, S3 = {V5}, S4 = {V3,V4}.
	views := []lattice.View{
		v("brand"),              // V1, arity 1
		v("suppkey", "partkey"), // V2, arity 2
		v("brand", "suppkey", "custkey", "month"),  // V3, arity 4
		v("partkey", "suppkey", "custkey", "year"), // V4, arity 4
		v("partkey", "custkey", "year"),            // V5, arity 3
		v("custkey"),                               // V6, arity 1
		v("custkey", "partkey"),                    // V7, arity 2
		v("partkey"),                               // V8, arity 1
		v("suppkey", "custkey"),                    // V9, arity 2
	}
	m := SelectMapping(views)
	if err := m.Validate(views); err != nil {
		t.Fatal(err)
	}
	// The paper maps these nine views onto exactly three Cubetrees:
	// R1{x,y,z,w}, R2{x,y,z,w}, R3{x,y}.
	if len(m.Trees) != 3 {
		t.Fatalf("trees = %d, want 3", len(m.Trees))
	}
	if m.Trees[0].Dim != 4 || m.Trees[1].Dim != 4 || m.Trees[2].Dim != 2 {
		t.Fatalf("dims = %d,%d,%d want 4,4,2", m.Trees[0].Dim, m.Trees[1].Dim, m.Trees[2].Dim)
	}
	// R3 holds one arity-1 and one arity-2 view (the paper's V8 and V9).
	last := m.Trees[2]
	if len(last.Views) != 2 {
		t.Fatalf("R3 views = %d, want 2", len(last.Views))
	}
	if views[last.Views[0]].Arity() != 1 || views[last.Views[1]].Arity() != 2 {
		t.Fatalf("R3 arities wrong")
	}
}

func TestSelectMappingNoArityCollision(t *testing.T) {
	views := []lattice.View{
		v("a"), v("b"), v("c"),
		v("a", "b"), v("b", "c"),
		v("a", "b", "c"),
	}
	m := SelectMapping(views)
	if err := m.Validate(views); err != nil {
		t.Fatal(err)
	}
	// 3 arity-1 views force 3 trees.
	if len(m.Trees) != 3 {
		t.Fatalf("trees = %d, want 3", len(m.Trees))
	}
}

func TestSelectMappingSingleView(t *testing.T) {
	views := []lattice.View{v("x", "y")}
	m := SelectMapping(views)
	if len(m.Trees) != 1 || m.Trees[0].Dim != 2 {
		t.Fatalf("mapping = %+v", m)
	}
	if m.TreeOf(0) != 0 {
		t.Fatal("TreeOf broken")
	}
}

func TestSelectMappingNoneView(t *testing.T) {
	views := []lattice.View{v("a", "b"), v()}
	m := SelectMapping(views)
	if err := m.Validate(views); err != nil {
		t.Fatal(err)
	}
	if len(m.Trees) != 1 {
		t.Fatalf("trees = %d", len(m.Trees))
	}
	// The none view packs first.
	if views[m.Trees[0].Views[0]].Arity() != 0 {
		t.Fatal("none view must pack first")
	}
}

// buildTestForest computes three views over a toy fact table and builds a
// forest.
func buildTestForest(t *testing.T, fanout int) (*Forest, map[string]*cube.ViewData) {
	t.Helper()
	facts := &memRows{
		cols: []lattice.Attr{"partkey", "suppkey", "custkey"},
		rows: [][]int64{
			{1, 1, 1}, {1, 1, 1}, {2, 1, 1}, {2, 2, 3}, {3, 1, 3}, {1, 2, 2},
			{4, 2, 1}, {4, 1, 2}, {2, 2, 2}, {1, 2, 3},
		},
		measure: []int64{5, 7, 3, 4, 9, 2, 8, 1, 6, 10},
	}
	views := []lattice.View{
		v("partkey", "suppkey", "custkey"),
		v("partkey", "suppkey"),
		v("custkey"),
		v(),
	}
	data, err := cube.Compute(t.TempDir(), facts, views, cube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sources []*cube.ViewData
	for _, view := range views {
		sources = append(sources, data[view.Key()])
	}
	f, err := Build(filepath.Join(t.TempDir(), "forest"), sources, BuildOptions{
		Fanout:  fanout,
		Domains: map[lattice.Attr]int64{"partkey": 4, "suppkey": 2, "custkey": 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, data
}

type memRows struct {
	cols    []lattice.Attr
	rows    [][]int64
	measure []int64
	i       int
}

func (m *memRows) Next() bool { m.i++; return m.i <= len(m.rows) }
func (m *memRows) Value(attr lattice.Attr) (int64, error) {
	for j, c := range m.cols {
		if c == attr {
			return m.rows[m.i-1][j], nil
		}
	}
	return 0, fmt.Errorf("no column %q", attr)
}
func (m *memRows) Measure() int64 { return m.measure[m.i-1] }

func TestForestBuildStructure(t *testing.T) {
	f, _ := buildTestForest(t, 0)
	// 4 views of arities 3,2,1,0: one view per arity -> a single tree.
	if f.Trees() != 1 {
		t.Fatalf("trees = %d, want 1", f.Trees())
	}
	if len(f.Placements()) != 4 {
		t.Fatalf("placements = %d", len(f.Placements()))
	}
	if f.Tree(0).Dim() != 3 {
		t.Fatalf("dim = %d", f.Tree(0).Dim())
	}
	if err := f.Tree(0).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestForestQueries(t *testing.T) {
	f, _ := buildTestForest(t, 3)
	// Total over everything (none node).
	rows, err := f.Execute(workload.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Sum != 55 || rows[0].Count != 10 {
		t.Fatalf("none query = %+v", rows)
	}
	// Q1-style: per-supplier totals of part 1 (uses view ps).
	rows, err = f.Execute(workload.Query{
		Node:  []lattice.Attr{"partkey", "suppkey"},
		Fixed: []workload.Pred{{Attr: "partkey", Value: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// part 1: supp 1 -> 12 (5+7), supp 2 -> 12 (2+10).
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Group[0] != 1 {
			t.Fatalf("fixed attr leaked: %+v", r)
		}
	}
	if rows[0].Sum != 12 || rows[1].Sum != 12 {
		t.Fatalf("sums = %+v", rows)
	}
	// Aggregating query on a non-materialized node {suppkey}: derived from
	// a covering view with re-aggregation.
	rows, err = f.Execute(workload.Query{
		Node:  []lattice.Attr{"suppkey"},
		Fixed: []workload.Pred{{Attr: "suppkey", Value: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Sum != 30 { // 4+2+8+6+10
		t.Fatalf("suppkey=2 -> %+v", rows)
	}
	// custkey view: custkey=3 -> 4+9+10 = 23.
	rows, err = f.Execute(workload.Query{
		Node:  []lattice.Attr{"custkey"},
		Fixed: []workload.Pred{{Attr: "custkey", Value: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Sum != 23 || rows[0].Count != 3 {
		t.Fatalf("custkey=3 -> %+v", rows)
	}
}

func TestForestPlanPrefersExactView(t *testing.T) {
	f, _ := buildTestForest(t, 0)
	info, err := f.Plan(workload.Query{
		Node:  []lattice.Attr{"custkey"},
		Fixed: []workload.Pred{{Attr: "custkey", Value: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Placement.View.Key() != "custkey" {
		t.Fatalf("planner chose %s for custkey query", info.Placement.View)
	}
}

func TestForestOpenRoundTrip(t *testing.T) {
	f, _ := buildTestForest(t, 3)
	dir := f.Dir()
	q := workload.Query{
		Node:  []lattice.Attr{"partkey", "suppkey", "custkey"},
		Fixed: []workload.Pred{{Attr: "custkey", Value: 1}},
	}
	want, err := f.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got, err := g.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !workload.EqualRows(got, want) {
		t.Fatalf("reopened results differ: %+v vs %+v", got, want)
	}
	if len(g.Placements()) != 4 {
		t.Fatalf("placements after reopen = %d", len(g.Placements()))
	}
}

func TestForestMergeUpdate(t *testing.T) {
	f, _ := buildTestForest(t, 3)
	// Delta touching all four views: new fact rows
	// (1,1,1,+5), (4,2,3,+1) — first collides, second is new in psc.
	deltaFacts := &memRows{
		cols:    []lattice.Attr{"partkey", "suppkey", "custkey"},
		rows:    [][]int64{{1, 1, 1}, {4, 2, 3}},
		measure: []int64{5, 1},
	}
	views := []lattice.View{
		v("partkey", "suppkey", "custkey"),
		v("partkey", "suppkey"),
		v("custkey"),
		v(),
	}
	perView, err := cube.Compute(t.TempDir(), deltaFacts, views, cube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	deltas, err := f.DeltasFor(t.TempDir(), perView)
	if err != nil {
		t.Fatal(err)
	}
	nf, err := f.MergeUpdate(filepath.Join(t.TempDir(), "forest2"), deltas, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer nf.Close()
	for i := 0; i < nf.Trees(); i++ {
		if err := nf.Tree(i).Validate(); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := nf.Execute(workload.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Sum != 61 || rows[0].Count != 12 {
		t.Fatalf("total after merge = %+v", rows)
	}
	// Old forest unchanged.
	old, _ := f.Execute(workload.Query{})
	if old[0].Sum != 55 {
		t.Fatalf("old forest mutated: %+v", old)
	}
	// Collision updated in place: (1,1,1) now 17.
	rows, _ = nf.Execute(workload.Query{
		Node: []lattice.Attr{"partkey", "suppkey", "custkey"},
		Fixed: []workload.Pred{
			{Attr: "partkey", Value: 1}, {Attr: "suppkey", Value: 1}, {Attr: "custkey", Value: 1},
		},
	})
	if len(rows) != 1 || rows[0].Sum != 17 {
		t.Fatalf("(1,1,1) after merge = %+v", rows)
	}
	// New point present: (4,2,3).
	rows, _ = nf.Execute(workload.Query{
		Node: []lattice.Attr{"partkey", "suppkey", "custkey"},
		Fixed: []workload.Pred{
			{Attr: "partkey", Value: 4}, {Attr: "suppkey", Value: 2}, {Attr: "custkey", Value: 3},
		},
	})
	if len(rows) != 1 || rows[0].Sum != 1 {
		t.Fatalf("(4,2,3) after merge = %+v", rows)
	}
}

func TestForestWithReplicas(t *testing.T) {
	facts := &memRows{
		cols: []lattice.Attr{"partkey", "suppkey", "custkey"},
		rows: [][]int64{
			{1, 1, 1}, {2, 2, 2}, {3, 1, 2}, {1, 2, 1},
		},
		measure: []int64{1, 2, 3, 4},
	}
	top := v("partkey", "suppkey", "custkey")
	data, err := cube.Compute(t.TempDir(), facts, []lattice.View{top}, cube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := data[top.Key()]
	rep, err := cube.Reorder(t.TempDir(), base, []lattice.Attr{"custkey", "suppkey", "partkey"}, cube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Build(filepath.Join(t.TempDir(), "f"), []*cube.ViewData{base, rep}, BuildOptions{
		Domains: map[lattice.Attr]int64{"partkey": 3, "suppkey": 2, "custkey": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Two placements of the same logical view; replicas of the same arity
	// land on separate trees.
	if f.Trees() != 2 {
		t.Fatalf("trees = %d, want 2", f.Trees())
	}
	// A query fixing partkey should pick the replica whose LAST coordinate
	// is partkey (the base order ends in custkey; the replica ends in
	// partkey), because the fixed suffix is contiguous there.
	info, err := f.Plan(workload.Query{
		Node:  []lattice.Attr{"partkey", "suppkey", "custkey"},
		Fixed: []workload.Pred{{Attr: "partkey", Value: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Placement.View.OrderKey() != "custkey,suppkey,partkey" {
		t.Fatalf("planner chose %s", info.Placement.View.OrderKey())
	}
	// Both replicas agree on results.
	q := workload.Query{
		Node:  []lattice.Attr{"partkey", "suppkey", "custkey"},
		Fixed: []workload.Pred{{Attr: "partkey", Value: 1}},
	}
	got, err := f.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rows = %+v", got)
	}
}

// TestSelectMappingPropertiesQuick: for random view sets, the mapping
// always validates and uses exactly max-multiplicity-per-arity trees (the
// minimality the paper proves).
func TestSelectMappingPropertiesQuick(t *testing.T) {
	attrsPool := []lattice.Attr{"a", "b", "c", "d", "e", "f"}
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 20 {
			raw = raw[:20]
		}
		var views []lattice.View
		counts := map[int]int{}
		for i, r := range raw {
			arity := int(r % 5) // 0..4
			view := lattice.View{Name: string(rune('A' + i))}
			// Distinct attrs per view; identity of the attrs doesn't matter
			// to the algorithm, only arity.
			for j := 0; j < arity; j++ {
				view.Attrs = append(view.Attrs, attrsPool[(int(r)+j)%len(attrsPool)])
			}
			if len(view.Attrs) != arity {
				return false
			}
			// attrsPool slice above may repeat attrs when arity > pool; cap
			// arity at pool size to keep views well-formed.
			views = append(views, view)
			counts[arity]++
		}
		m := SelectMapping(views)
		if err := m.Validate(views); err != nil {
			return false
		}
		// Minimality: #trees equals the maximum multiplicity over arities
		// >= 1 (zero-arity views share tree 0).
		want := 0
		for a, c := range counts {
			if a >= 1 && c > want {
				want = c
			}
		}
		if want == 0 && counts[0] > 0 {
			want = 1
		}
		return len(m.Trees) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAllPlacementsAgree is a metamorphic planner test: a query must
// return identical rows no matter which covering placement executes it, so
// the planner's choice can never change answers, only cost.
func TestAllPlacementsAgree(t *testing.T) {
	facts := &memRows{
		cols: []lattice.Attr{"partkey", "suppkey", "custkey"},
		rows: [][]int64{
			{1, 1, 1}, {1, 1, 2}, {2, 1, 1}, {2, 2, 3}, {3, 1, 3}, {1, 2, 2},
			{4, 2, 1}, {4, 1, 2}, {2, 2, 2}, {1, 2, 3}, {3, 2, 1}, {4, 2, 2},
		},
		measure: []int64{5, 7, 3, 4, 9, 2, 8, 1, 6, 10, 11, 12},
	}
	top := v("partkey", "suppkey", "custkey")
	data, err := cube.Compute(t.TempDir(), facts, []lattice.View{top}, cube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := data[top.Key()]
	scratch := t.TempDir()
	rep1, err := cube.Reorder(scratch, base, []lattice.Attr{"suppkey", "custkey", "partkey"}, cube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := cube.Reorder(scratch, base, []lattice.Attr{"custkey", "partkey", "suppkey"}, cube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Build(filepath.Join(t.TempDir(), "f"), []*cube.ViewData{base, rep1, rep2}, BuildOptions{
		Fanout:  3,
		Domains: map[lattice.Attr]int64{"partkey": 4, "suppkey": 2, "custkey": 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	gen := workload.NewGenerator(55, map[lattice.Attr]int64{"partkey": 4, "suppkey": 2, "custkey": 3})
	node := []lattice.Attr{"partkey", "suppkey", "custkey"}
	for i := 0; i < 40; i++ {
		q := gen.ForNode(node)
		var want []workload.Row
		for pi := range f.placements {
			rows, _, err := f.executeOn(context.Background(), &f.placements[pi], q, nil)
			if err != nil {
				t.Fatalf("%s on %s: %v", q, f.placements[pi].View, err)
			}
			if pi == 0 {
				want = rows
				continue
			}
			if !workload.EqualRows(rows, want) {
				t.Fatalf("%s: placement %s disagrees with %s",
					q, f.placements[pi].View.OrderKey(), f.placements[0].View.OrderKey())
			}
		}
	}
}

func TestParallelBuildMatchesSequential(t *testing.T) {
	facts := &memRows{
		cols: []lattice.Attr{"partkey", "suppkey", "custkey"},
		rows: [][]int64{
			{1, 1, 1}, {2, 1, 2}, {3, 2, 1}, {1, 2, 3}, {2, 2, 2}, {3, 1, 3},
		},
		measure: []int64{1, 2, 3, 4, 5, 6},
	}
	views := []lattice.View{
		v("partkey", "suppkey", "custkey"),
		v("partkey"),
		v("suppkey"),
		v("custkey"),
	}
	data, err := cube.Compute(t.TempDir(), facts, views, cube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sources []*cube.ViewData
	for _, view := range views {
		sources = append(sources, data[view.Key()])
	}
	domains := map[lattice.Attr]int64{"partkey": 3, "suppkey": 2, "custkey": 3}
	seq, err := Build(filepath.Join(t.TempDir(), "seq"), sources, BuildOptions{Domains: domains})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	par, err := Build(filepath.Join(t.TempDir(), "par"), sources, BuildOptions{Domains: domains, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	if err := par.Validate(); err != nil {
		t.Fatal(err)
	}
	if seq.Trees() != par.Trees() || seq.Points() != par.Points() {
		t.Fatalf("structure differs: %d/%d trees, %d/%d points",
			seq.Trees(), par.Trees(), seq.Points(), par.Points())
	}
	gen := workload.NewGenerator(3, domains)
	for i := 0; i < 20; i++ {
		q := gen.ForNode([]lattice.Attr{"partkey", "suppkey", "custkey"})
		a, err := seq.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if !workload.EqualRows(a, b) {
			t.Fatalf("%s: parallel build answers differ", q)
		}
	}
}

func TestMergeUpdateWithoutDeltasCopies(t *testing.T) {
	f, _ := buildTestForest(t, 3)
	nf, err := f.MergeUpdate(filepath.Join(t.TempDir(), "copy"), nil, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer nf.Close()
	if nf.Points() != f.Points() {
		t.Fatalf("copy has %d points, want %d", nf.Points(), f.Points())
	}
	a, err := f.Execute(workload.Query{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := nf.Execute(workload.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if !workload.EqualRows(a, b) {
		t.Fatal("copy answers differ")
	}
}

func TestForestRejectsMixedSchemas(t *testing.T) {
	dir := t.TempDir()
	schema, err := lattice.NewSchema(lattice.AggMin)
	if err != nil {
		t.Fatal(err)
	}
	a, err := cube.WriteTuples(dir, v("a"), [][]int64{{1, 5, 1, 5}}, cube.Options{Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	b, err := cube.WriteTuples(dir, v("a", "b"), [][]int64{{1, 1, 5, 1}}, cube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(filepath.Join(t.TempDir(), "f"), []*cube.ViewData{a, b}, BuildOptions{}); err == nil {
		t.Fatal("mixed schemas accepted")
	}
}

func TestBuildRejectsZeroCoordinates(t *testing.T) {
	view := v("a")
	vd, err := cube.WriteTuples(t.TempDir(), view, [][]int64{{0, 5, 1}}, cube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(filepath.Join(t.TempDir(), "z"), []*cube.ViewData{vd}, BuildOptions{}); err == nil {
		t.Fatal("zero coordinate accepted")
	}
}
