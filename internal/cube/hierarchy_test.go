package cube

import (
	"testing"

	"cubetree/internal/lattice"
)

// brandOf is a toy hierarchy: parts 1-2 are brand 1, parts 3+ brand 2.
func brandOf(part int64) int64 {
	if part <= 2 {
		return 1
	}
	return 2
}

func hierFacts() *memRows {
	return &memRows{
		cols: []lattice.Attr{"partkey", "suppkey", "brand"},
		rows: [][]int64{
			{1, 1, 1}, {2, 1, 1}, {3, 1, 2}, {3, 2, 2}, {4, 2, 2},
		},
		measure: []int64{10, 20, 30, 40, 50},
	}
}

func TestHierarchyDerivation(t *testing.T) {
	// With the hierarchy declared, V{brand} must derive from V{partkey}
	// rather than the fact stream — verify by giving the fact stream a
	// brand column that DISAGREES with the hierarchy; the hierarchy result
	// must win, proving the derivation path was used.
	liar := &memRows{
		cols: []lattice.Attr{"partkey", "suppkey", "brand"},
		rows: [][]int64{
			{1, 1, 9}, {2, 1, 9}, {3, 1, 9}, {3, 2, 9}, {4, 2, 9},
		},
		measure: []int64{10, 20, 30, 40, 50},
	}
	res, err := Compute(t.TempDir(), liar, []lattice.View{
		{Attrs: []lattice.Attr{"partkey"}},
		{Attrs: []lattice.Attr{"brand"}},
	}, Options{Hierarchies: []Hierarchy{{From: "partkey", To: "brand", Map: brandOf}}})
	if err != nil {
		t.Fatal(err)
	}
	brand := collect(t, res["brand"])
	if len(brand) != 2 {
		t.Fatalf("brand groups = %v", brand)
	}
	if tup := brand["[1]"]; tup == nil || tup[1] != 30 || tup[2] != 2 {
		t.Fatalf("brand 1 = %v (derivation from partkey not used?)", tup)
	}
	if tup := brand["[2]"]; tup == nil || tup[1] != 120 || tup[2] != 3 {
		t.Fatalf("brand 2 = %v", tup)
	}
}

func TestHierarchyMatchesFactComputation(t *testing.T) {
	// Deriving via hierarchy must give the same result as computing from
	// the fact stream when the fact column agrees with the mapping.
	views := []lattice.View{
		{Attrs: []lattice.Attr{"partkey", "suppkey"}},
		{Attrs: []lattice.Attr{"brand", "suppkey"}},
	}
	withH, err := Compute(t.TempDir(), hierFacts(), views, Options{
		Hierarchies: []Hierarchy{{From: "partkey", To: "brand", Map: brandOf}},
	})
	if err != nil {
		t.Fatal(err)
	}
	withoutH, err := Compute(t.TempDir(), hierFacts(), views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := collect(t, withH["brand,suppkey"])
	b := collect(t, withoutH["brand,suppkey"])
	if len(a) != len(b) {
		t.Fatalf("group counts differ: %d vs %d", len(a), len(b))
	}
	for k, tup := range b {
		got := a[k]
		if got == nil || got[2] != tup[2] || got[3] != tup[3] {
			t.Fatalf("group %s: hierarchy %v vs fact %v", k, got, tup)
		}
	}
}

func TestHierarchyEqualArityOrdering(t *testing.T) {
	// V{brand} (arity 1) derives from V{partkey} (arity 1): the multi-pass
	// derivation must handle the equal-arity dependency regardless of
	// declaration order.
	for _, order := range [][]lattice.View{
		{{Attrs: []lattice.Attr{"brand"}}, {Attrs: []lattice.Attr{"partkey"}}},
		{{Attrs: []lattice.Attr{"partkey"}}, {Attrs: []lattice.Attr{"brand"}}},
	} {
		res, err := Compute(t.TempDir(), hierFacts(), order, Options{
			Hierarchies: []Hierarchy{{From: "partkey", To: "brand", Map: brandOf}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res["brand"].Rows != 2 || res["partkey"].Rows != 4 {
			t.Fatalf("rows: brand=%d partkey=%d", res["brand"].Rows, res["partkey"].Rows)
		}
	}
}

func TestHierarchyValidation(t *testing.T) {
	if _, err := newHierarchySet([]Hierarchy{{From: "a", To: "b"}}); err == nil {
		t.Fatal("nil mapping accepted")
	}
	if _, err := newHierarchySet([]Hierarchy{{From: "a", To: "a", Map: brandOf}}); err == nil {
		t.Fatal("self-hierarchy accepted")
	}
	if _, err := newHierarchySet([]Hierarchy{
		{From: "a", To: "b", Map: brandOf},
		{From: "c", To: "b", Map: brandOf},
	}); err == nil {
		t.Fatal("duplicate target accepted")
	}
}

func TestHierarchyMinMaxFold(t *testing.T) {
	schema, err := lattice.NewSchema(lattice.AggMin, lattice.AggMax)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(t.TempDir(), hierFacts(), []lattice.View{
		{Attrs: []lattice.Attr{"partkey"}},
		{Attrs: []lattice.Attr{"brand"}},
	}, Options{
		Schema:      schema,
		Hierarchies: []Hierarchy{{From: "partkey", To: "brand", Map: brandOf}},
	})
	if err != nil {
		t.Fatal(err)
	}
	brand := collect(t, res["brand"])
	// brand 2 covers quantities 30, 40, 50 -> min 30, max 50.
	tup := brand["[2]"]
	if tup == nil || tup[3] != 30 || tup[4] != 50 {
		t.Fatalf("brand 2 min/max = %v", tup)
	}
}
