package cube

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"cubetree/internal/enc"
	"cubetree/internal/pager"
)

// TupleReader is a pull-based reader over a ViewData file, used where a
// push-based Iterate does not fit (e.g. merge-packing two streams).
type TupleReader struct {
	f      *os.File
	r      *bufio.Reader
	width  int
	fields int
	buf    []byte
	tuple  []int64
	bytes  int64
	stats  *pager.Stats
}

// Open returns a reader positioned at the first tuple.
func (vd *ViewData) Open() (*TupleReader, error) {
	f, err := os.Open(vd.Path)
	if err != nil {
		return nil, fmt.Errorf("cube: open view data: %w", err)
	}
	return &TupleReader{
		f:      f,
		r:      bufio.NewReaderSize(f, 1<<20),
		width:  vd.Width(),
		fields: vd.Fields(),
		buf:    make([]byte, vd.Width()),
		tuple:  make([]int64, vd.Fields()),
		stats:  vd.stats,
	}, nil
}

// Next returns the next tuple, or io.EOF after the last one. The returned
// slice is reused between calls.
func (tr *TupleReader) Next() ([]int64, error) {
	_, err := io.ReadFull(tr.r, tr.buf)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("cube: read view data: %w", err)
	}
	tr.bytes += int64(tr.width)
	for i := range tr.tuple {
		tr.tuple[i] = enc.Field(tr.buf, i)
	}
	return tr.tuple, nil
}

// Close releases the reader and charges its traffic as sequential reads.
func (tr *TupleReader) Close() error {
	if tr.stats != nil {
		tr.stats.AddSequentialReads(uint64((tr.bytes + pager.PageSize - 1) / pager.PageSize))
	}
	return tr.f.Close()
}
