package cube

import (
	"fmt"

	"cubetree/internal/lattice"
)

// Hierarchy declares that attribute To is a function of attribute From —
// e.g. brand = f(partkey) along the paper's part-type -> part hierarchy, or
// year = f(month-key) along the time dimension. Declaring hierarchies lets
// the computation pipeline derive a roll-up view from an already-computed
// finer view instead of re-scanning the fact stream, exactly the
// derives-from relation with hierarchies of Harinarayan et al. that the
// paper's Figure 10 plan uses.
type Hierarchy struct {
	From lattice.Attr
	To   lattice.Attr
	// Map computes the coarse attribute value from the fine one. It must
	// be a pure function returning values >= 1.
	Map func(int64) int64
}

// hierarchySet indexes hierarchies by target attribute.
type hierarchySet map[lattice.Attr]Hierarchy

func newHierarchySet(hs []Hierarchy) (hierarchySet, error) {
	set := make(hierarchySet, len(hs))
	for _, h := range hs {
		if h.Map == nil {
			return nil, fmt.Errorf("cube: hierarchy %s->%s has no mapping", h.From, h.To)
		}
		if h.From == h.To {
			return nil, fmt.Errorf("cube: hierarchy %s maps to itself", h.From)
		}
		if _, dup := set[h.To]; dup {
			return nil, fmt.Errorf("cube: attribute %s has two hierarchies", h.To)
		}
		set[h.To] = h
	}
	return set, nil
}

// resolve returns, for each child attribute, how to obtain it from a
// parent view: the parent column index and an optional mapping. ok is
// false if some attribute is neither in the parent nor reachable through
// one hierarchy step from a parent attribute.
func (hs hierarchySet) resolve(child, parent lattice.View) (plan []attrSource, ok bool) {
	plan = make([]attrSource, child.Arity())
	for i, a := range child.Attrs {
		found := false
		for j, pa := range parent.Attrs {
			if a == pa {
				plan[i] = attrSource{col: j}
				found = true
				break
			}
		}
		if found {
			continue
		}
		h, has := hs[a]
		if !has {
			return nil, false
		}
		for j, pa := range parent.Attrs {
			if h.From == pa {
				plan[i] = attrSource{col: j, mapFn: h.Map}
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return plan, true
}

// attrSource produces one child attribute from a parent tuple.
type attrSource struct {
	col   int
	mapFn func(int64) int64
}

func (s attrSource) value(parentTuple []int64) int64 {
	v := parentTuple[s.col]
	if s.mapFn != nil {
		return s.mapFn(v)
	}
	return v
}
