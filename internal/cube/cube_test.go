package cube

import (
	"fmt"
	"testing"

	"cubetree/internal/lattice"
	"cubetree/internal/rtree"
	"cubetree/internal/tpcd"
)

// memRows is an in-memory RowIter for hand-built fact tables.
type memRows struct {
	cols    []lattice.Attr
	rows    [][]int64 // values aligned with cols
	measure []int64
	i       int
}

func (m *memRows) Next() bool {
	m.i++
	return m.i <= len(m.rows)
}

func (m *memRows) Value(attr lattice.Attr) (int64, error) {
	for j, c := range m.cols {
		if c == attr {
			return m.rows[m.i-1][j], nil
		}
	}
	return 0, fmt.Errorf("no column %q", attr)
}

func (m *memRows) Measure() int64 { return m.measure[m.i-1] }

func smallFacts() *memRows {
	// (part, supp, cust) -> qty; paper-flavoured toy data.
	return &memRows{
		cols: []lattice.Attr{"partkey", "suppkey", "custkey"},
		rows: [][]int64{
			{1, 1, 1}, {1, 1, 1}, {2, 1, 1}, {2, 2, 3}, {3, 1, 3}, {1, 2, 2},
		},
		measure: []int64{5, 7, 3, 4, 9, 2},
	}
}

func viewsOf(attrs ...[]lattice.Attr) []lattice.View {
	var out []lattice.View
	for _, a := range attrs {
		out = append(out, lattice.View{Attrs: a})
	}
	return out
}

func collect(t *testing.T, vd *ViewData) map[string][]int64 {
	t.Helper()
	out := map[string][]int64{}
	var order []string
	err := vd.Iterate(func(tuple []int64) error {
		key := fmt.Sprint(tuple[:vd.View.Arity()])
		out[key] = append([]int64(nil), tuple...)
		order = append(order, key)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(out) {
		t.Fatalf("duplicate groups in view data: %v", order)
	}
	return out
}

func TestComputeTopView(t *testing.T) {
	res, err := Compute(t.TempDir(), smallFacts(),
		viewsOf([]lattice.Attr{"partkey", "suppkey", "custkey"}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	vd := res["custkey,partkey,suppkey"]
	if vd == nil {
		t.Fatalf("missing top view; have %v", keys(res))
	}
	got := collect(t, vd)
	if len(got) != 5 {
		t.Fatalf("top view has %d groups, want 5", len(got))
	}
	// (1,1,1) aggregated 5+7=12, count 2.
	tup := got["[1 1 1]"]
	if tup == nil || tup[3] != 12 || tup[4] != 2 {
		t.Fatalf("group (1,1,1) = %v", tup)
	}
}

func TestComputeDerivedViews(t *testing.T) {
	res, err := Compute(t.TempDir(), smallFacts(), viewsOf(
		[]lattice.Attr{"partkey", "suppkey", "custkey"},
		[]lattice.Attr{"partkey", "suppkey"},
		[]lattice.Attr{"partkey"},
		nil, // none view
	), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps := collect(t, res["partkey,suppkey"])
	if len(ps) != 5 {
		t.Fatalf("ps groups = %d, want 5", len(ps))
	}
	if tup := ps["[1 1]"]; tup[2] != 12 || tup[3] != 2 {
		t.Fatalf("(1,1) = %v", tup)
	}
	p := collect(t, res["partkey"])
	if tup := p["[1]"]; tup[1] != 14 || tup[2] != 3 {
		t.Fatalf("(1) = %v", tup)
	}
	none := collect(t, res["none"])
	if tup := none["[]"]; tup[0] != 30 || tup[1] != 6 {
		t.Fatalf("none = %v", tup)
	}
}

func TestComputeHierarchyView(t *testing.T) {
	facts := &memRows{
		cols:    []lattice.Attr{"partkey", "brand"},
		rows:    [][]int64{{1, 7}, {2, 7}, {3, 8}},
		measure: []int64{10, 20, 30},
	}
	res, err := Compute(t.TempDir(), facts, viewsOf(
		[]lattice.Attr{"partkey"},
		[]lattice.Attr{"brand"},
	), Options{})
	if err != nil {
		t.Fatal(err)
	}
	brand := collect(t, res["brand"])
	if tup := brand["[7]"]; tup[1] != 30 || tup[2] != 2 {
		t.Fatalf("brand 7 = %v", tup)
	}
}

func TestViewDataPackOrder(t *testing.T) {
	res, err := Compute(t.TempDir(), smallFacts(), viewsOf(
		[]lattice.Attr{"partkey", "suppkey", "custkey"},
	), Options{})
	if err != nil {
		t.Fatal(err)
	}
	vd := res["custkey,partkey,suppkey"]
	var prev []int64
	err = vd.Iterate(func(tuple []int64) error {
		cur := append([]int64(nil), tuple[:3]...)
		if prev != nil && !rtree.PackLess(prev, cur) {
			t.Fatalf("not in pack order: %v then %v", prev, cur)
		}
		prev = cur
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestComputeRejectsDuplicates(t *testing.T) {
	_, err := Compute(t.TempDir(), smallFacts(), viewsOf(
		[]lattice.Attr{"partkey", "suppkey"},
		[]lattice.Attr{"suppkey", "partkey"},
	), Options{})
	if err == nil {
		t.Fatal("duplicate views accepted")
	}
}

func TestReorderReplica(t *testing.T) {
	res, err := Compute(t.TempDir(), smallFacts(), viewsOf(
		[]lattice.Attr{"partkey", "suppkey", "custkey"},
	), Options{})
	if err != nil {
		t.Fatal(err)
	}
	vd := res["custkey,partkey,suppkey"]
	re, err := Reorder(t.TempDir(), vd, []lattice.Attr{"custkey", "suppkey", "partkey"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Rows != vd.Rows {
		t.Fatalf("replica rows %d != %d", re.Rows, vd.Rows)
	}
	if re.View.OrderKey() != "custkey,suppkey,partkey" {
		t.Fatalf("replica order = %s", re.View.OrderKey())
	}
	// Replica aggregates match: total sums equal.
	sum := func(v *ViewData) int64 {
		var s int64
		v.Iterate(func(tuple []int64) error { s += tuple[v.View.Arity()]; return nil })
		return s
	}
	if sum(re) != sum(vd) {
		t.Fatal("replica sum differs")
	}
	// Replica is in its own pack order.
	var prev []int64
	re.Iterate(func(tuple []int64) error {
		cur := append([]int64(nil), tuple[:3]...)
		if prev != nil && !rtree.PackLess(prev, cur) {
			t.Fatalf("replica not pack ordered: %v then %v", prev, cur)
		}
		prev = cur
		return nil
	})
}

func TestTupleReaderMatchesIterate(t *testing.T) {
	res, err := Compute(t.TempDir(), smallFacts(), viewsOf(
		[]lattice.Attr{"partkey", "suppkey"},
	), Options{})
	if err != nil {
		t.Fatal(err)
	}
	vd := res["partkey,suppkey"]
	var pushed [][]int64
	vd.Iterate(func(tuple []int64) error {
		pushed = append(pushed, append([]int64(nil), tuple...))
		return nil
	})
	r, err := vd.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; ; i++ {
		tup, err := r.Next()
		if err != nil {
			if i != len(pushed) {
				t.Fatalf("reader stopped at %d of %d", i, len(pushed))
			}
			break
		}
		for j := range tup {
			if tup[j] != pushed[i][j] {
				t.Fatalf("reader tuple %d differs: %v vs %v", i, tup, pushed[i])
			}
		}
	}
}

func TestWriteTuples(t *testing.T) {
	v := lattice.View{Attrs: []lattice.Attr{"a", "b"}}
	vd, err := WriteTuples(t.TempDir(), v, [][]int64{
		{2, 1, 10, 1}, {1, 1, 5, 1}, {2, 1, 3, 1},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, vd)
	if len(got) != 2 {
		t.Fatalf("groups = %d", len(got))
	}
	if tup := got["[2 1]"]; tup[2] != 13 || tup[3] != 2 {
		t.Fatalf("(2,1) = %v", tup)
	}
}

func TestComputeOnTPCDStream(t *testing.T) {
	d := tpcd.New(tpcd.Params{SF: 0.002, Seed: 1})
	views := viewsOf(
		string2attrs("partkey", "suppkey", "custkey"),
		string2attrs("partkey", "suppkey"),
		string2attrs("custkey"),
		nil,
	)
	res, err := Compute(t.TempDir(), &factAdapter{it: d.FactRows()}, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	top := res["custkey,partkey,suppkey"]
	if top.Rows == 0 || top.Rows > d.Facts {
		t.Fatalf("top rows = %d", top.Rows)
	}
	// |ps| bounded by the PARTSUPP correlation.
	ps := res["partkey,suppkey"]
	if ps.Rows > 4*d.Parts {
		t.Fatalf("|ps| = %d > 4*parts", ps.Rows)
	}
	// Total quantity conserved across every view.
	total := func(vd *ViewData) int64 {
		var s int64
		vd.Iterate(func(tuple []int64) error { s += tuple[vd.View.Arity()]; return nil })
		return s
	}
	want := total(res["none"])
	for k, vd := range res {
		if got := total(vd); got != want {
			t.Fatalf("view %s total %d != %d", k, got, want)
		}
	}
}

func TestComputeParallelMatchesSequential(t *testing.T) {
	d := tpcd.New(tpcd.Params{SF: 0.002, Seed: 3})
	views := viewsOf(
		string2attrs("partkey", "suppkey", "custkey"),
		string2attrs("partkey", "suppkey"),
		string2attrs("partkey"),
		string2attrs("suppkey"),
		string2attrs("custkey"),
		nil,
	)
	seq, err := Compute(t.TempDir(), &factAdapter{it: d.FactRows()}, views, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Compute(t.TempDir(), &factAdapter{it: d.FactRows()}, views, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("view counts differ: %d vs %d", len(seq), len(par))
	}
	for key, a := range seq {
		b := par[key]
		if b == nil || a.Rows != b.Rows {
			t.Fatalf("view %s rows differ: %d vs %v", key, a.Rows, b)
		}
		am := collect(t, a)
		bm := collect(t, b)
		if len(am) != len(bm) {
			t.Fatalf("view %s groups differ", key)
		}
		for k, tup := range am {
			other := bm[k]
			for i := range tup {
				if tup[i] != other[i] {
					t.Fatalf("view %s group %s differs: %v vs %v", key, k, tup, other)
				}
			}
		}
	}
}

func string2attrs(names ...string) []lattice.Attr {
	out := make([]lattice.Attr, len(names))
	for i, n := range names {
		out[i] = lattice.Attr(n)
	}
	return out
}

// factAdapter bridges tpcd.Iterator to cube.RowIter.
type factAdapter struct{ it *tpcd.Iterator }

func (f *factAdapter) Next() bool { return f.it.Next() }
func (f *factAdapter) Value(a lattice.Attr) (int64, error) {
	return f.it.Value(a)
}
func (f *factAdapter) Measure() int64 { return f.it.Fact().Quantity }

func keys(m map[string]*ViewData) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
