// Package cube computes materialized aggregate views from a fact stream
// using sort-based aggregation in the style of Agrawal et al. (VLDB 1996),
// as the paper's loading pipeline does: each selected view is derived from
// its smallest already-computed parent (the dependency graph of Figure 10),
// falling back to a single shared pass over the fact table for the views no
// other selected view can derive.
//
// Views are produced as ViewData files: flat runs of fixed-width tuples
// [attr values..., SUM, COUNT] sorted in Cubetree pack order, ready either
// to bulk-load a Cubetree forest or to populate conventional tables.
package cube

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"

	"cubetree/internal/enc"
	"cubetree/internal/extsort"
	"cubetree/internal/lattice"
	"cubetree/internal/obs"
	"cubetree/internal/pager"
)

// RowIter streams fact rows. Value must answer for every attribute of every
// view being computed (including hierarchy attributes like "brand").
type RowIter interface {
	// Next advances to the next row, reporting whether one exists.
	Next() bool
	// Value returns the named attribute of the current row.
	Value(attr lattice.Attr) (int64, error)
	// Measure returns the aggregated measure of the current row.
	Measure() int64
}

// ViewData is one computed view stored as a flat file of fixed-width tuples
// [attrs..., SUM, COUNT] in pack order of the view's attribute sequence
// (last attribute major).
type ViewData struct {
	View lattice.View
	Path string
	Rows int64
	// Schema lists the stored measures (SUM and COUNT, optionally MIN and
	// MAX — the paper's "multiple aggregation functions for each point").
	Schema lattice.Schema

	stats *pager.Stats
}

// Fields returns the number of int64 fields per tuple (arity + measures).
func (vd *ViewData) Fields() int { return vd.View.Arity() + vd.Schema.Len() }

// Width returns the tuple width in bytes.
func (vd *ViewData) Width() int { return enc.TupleSize(vd.Fields()) }

// Iterate calls fn with each decoded tuple in file order. The slice passed
// to fn is reused between calls.
func (vd *ViewData) Iterate(fn func(tuple []int64) error) error {
	f, err := os.Open(vd.Path)
	if err != nil {
		return fmt.Errorf("cube: open view data: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	width := vd.Width()
	buf := make([]byte, width)
	tuple := make([]int64, vd.Fields())
	var bytes int64
	for {
		_, err := io.ReadFull(r, buf)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			return fmt.Errorf("cube: read view data: %w", err)
		}
		bytes += int64(width)
		for i := range tuple {
			tuple[i] = enc.Field(buf, i)
		}
		if err := fn(tuple); err != nil {
			return err
		}
	}
	if vd.stats != nil {
		vd.stats.AddSequentialReads(uint64((bytes + pager.PageSize - 1) / pager.PageSize))
	}
	return nil
}

// Remove deletes the backing file.
func (vd *ViewData) Remove() error { return os.Remove(vd.Path) }

// Bytes returns the file size in bytes.
func (vd *ViewData) Bytes() int64 { return vd.Rows * int64(vd.Width()) }

// Options tunes the computation.
type Options struct {
	// MemLimit bounds each external sorter's in-memory buffer (bytes). The
	// sorter pipelines run generation with double buffering, so a sorter
	// that spills holds up to 2x this limit while the spill is in flight.
	MemLimit int
	// Stats receives the sequential I/O charge of the sort/aggregate
	// pipeline. May be nil.
	Stats *pager.Stats
	// Schema selects the stored measures (default SUM, COUNT).
	Schema lattice.Schema
	// Hierarchies declares functional dependencies between attributes
	// (e.g. brand = f(partkey)), letting roll-up views derive from finer
	// views instead of the fact stream.
	Hierarchies []Hierarchy
	// Workers bounds the number of views sorted/derived concurrently
	// (default 1; the paper's testbed was a single CPU, and sequential
	// execution keeps I/O accounting deterministic).
	Workers int
	// Span, when non-nil, receives child spans for the pipeline's phases
	// (fact scan, per-view aggregation and derivation, sorter spills).
	Span *obs.Span
}

// Compute materializes the selected views from one pass over rows plus
// derivations between views. The result maps View.Key() to its data. dir
// holds the output and scratch files.
func Compute(dir string, rows RowIter, views []lattice.View, opts Options) (map[string]*ViewData, error) {
	if opts.MemLimit <= 0 {
		opts.MemLimit = extsort.DefaultMemLimit
	}
	if opts.Stats == nil {
		opts.Stats = &pager.Stats{}
	}
	if opts.Schema == nil {
		opts.Schema = lattice.DefaultSchema()
	}
	if err := opts.Schema.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cube: %w", err)
	}

	ordered := append([]lattice.View(nil), views...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arity() > ordered[j].Arity() })
	for i, v := range ordered {
		for j := 0; j < i; j++ {
			if v.Key() == ordered[j].Key() {
				return nil, fmt.Errorf("cube: duplicate view %s", v)
			}
		}
	}

	hs, err := newHierarchySet(opts.Hierarchies)
	if err != nil {
		return nil, err
	}

	// Views that no other selected view can produce — directly (subset) or
	// through declared hierarchies — are computed from the fact stream in
	// one shared pass.
	fromFact := make([]bool, len(ordered))
	for i, v := range ordered {
		fromFact[i] = true
		for j, p := range ordered {
			if j == i || p.Key() == v.Key() {
				continue
			}
			if _, ok := hs.resolve(v, p); ok {
				fromFact[i] = false
				break
			}
		}
	}

	// Pass over the fact stream, feeding one sorter per fact-derived view.
	sorters := make(map[string]*extsort.Sorter)
	for i, v := range ordered {
		if fromFact[i] {
			sorters[v.Key()] = newViewSorter(dir, v, opts)
		}
	}
	scanSp := opts.Span.Child("fact-scan")
	var nrows int64
	vals := make([]int64, 0, 8)
	mvec := make([]int64, opts.Schema.Len())
	for rows.Next() {
		nrows++
		opts.Schema.Init(mvec, rows.Measure())
		for i, v := range ordered {
			if !fromFact[i] {
				continue
			}
			vals = vals[:0]
			for _, a := range v.Attrs {
				x, err := rows.Value(a)
				if err != nil {
					return nil, err
				}
				vals = append(vals, x)
			}
			vals = append(vals, mvec...)
			if err := sorters[v.Key()].AddTuple(vals); err != nil {
				return nil, err
			}
		}
	}
	scanSp.SetInt("rows", nrows)
	scanSp.End()

	result := make(map[string]*ViewData, len(ordered))
	cleanup := func() {
		for _, vd := range result {
			if vd != nil {
				vd.Remove()
			}
		}
	}

	// Aggregate the fact-derived views, in parallel when Workers > 1 (each
	// view owns its sorter and output file; stats are atomic).
	var aggTasks []func() (string, *ViewData, error)
	for i, v := range ordered {
		if !fromFact[i] {
			continue
		}
		v := v
		s := sorters[v.Key()]
		aggTasks = append(aggTasks, func() (string, *ViewData, error) {
			sp := opts.Span.Child("aggregate")
			sp.SetStr("view", v.String())
			vd, err := aggregateSorter(dir, v, s, opts)
			if vd != nil {
				sp.SetInt("rows", vd.Rows)
			}
			sp.End()
			return v.Key(), vd, err
		})
	}
	if err := runTasks(opts.Workers, aggTasks, result); err != nil {
		cleanup()
		return nil, err
	}

	// Derive the remaining views, each from its smallest computed parent.
	// Hierarchy derivations can relate views of equal arity (V{brand} from
	// V{partkey}), so iterate until no progress remains rather than relying
	// on the arity order alone. Views ready in the same round are
	// independent and run in parallel.
	for {
		var round []func() (string, *ViewData, error)
		remaining := 0
		for i, v := range ordered {
			if fromFact[i] || result[v.Key()] != nil {
				continue
			}
			remaining++
			var parent *ViewData
			for _, p := range ordered {
				if p.Key() == v.Key() {
					continue
				}
				pd := result[p.Key()]
				if pd == nil {
					continue
				}
				if _, ok := hs.resolve(v, p); !ok {
					continue
				}
				if parent == nil || pd.Rows < parent.Rows {
					parent = pd
				}
			}
			if parent == nil {
				continue
			}
			v, parent := v, parent
			round = append(round, func() (string, *ViewData, error) {
				sp := opts.Span.Child("derive")
				sp.SetStr("view", v.String())
				sp.SetStr("parent", parent.View.String())
				vd, err := deriveView(dir, v, parent, hs, opts)
				if vd != nil {
					sp.SetInt("rows", vd.Rows)
				}
				sp.End()
				return v.Key(), vd, err
			})
		}
		if remaining == 0 {
			break
		}
		if len(round) == 0 {
			cleanup()
			return nil, fmt.Errorf("cube: derivation stuck with %d views unresolved", remaining)
		}
		if err := runTasks(opts.Workers, round, result); err != nil {
			cleanup()
			return nil, err
		}
	}
	return result, nil
}

// runTasks executes tasks with up to workers goroutines, storing each
// produced ViewData into result under its key. On error the first failure
// is returned after all in-flight tasks finish.
func runTasks(workers int, tasks []func() (string, *ViewData, error), result map[string]*ViewData) error {
	if workers <= 1 || len(tasks) <= 1 {
		for _, task := range tasks {
			key, vd, err := task()
			if err != nil {
				return err
			}
			result[key] = vd
		}
		return nil
	}
	type outcome struct {
		key string
		vd  *ViewData
		err error
	}
	sem := make(chan struct{}, workers)
	out := make(chan outcome, len(tasks))
	for _, task := range tasks {
		task := task
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			key, vd, err := task()
			out <- outcome{key: key, vd: vd, err: err}
		}()
	}
	var first error
	for range tasks {
		o := <-out
		if o.err != nil {
			if first == nil {
				first = o.err
			}
			continue
		}
		result[o.key] = o.vd
	}
	return first
}

// newViewSorter builds a sorter over [attrs..., measures...] tuples in the
// view's pack order (last attribute major).
func newViewSorter(dir string, v lattice.View, opts Options) *extsort.Sorter {
	fields := packOrderFields(v.Arity())
	width := enc.TupleSize(v.Arity() + opts.Schema.Len())
	s := extsort.NewSorter(dir, width, enc.LessByFields(fields), opts.MemLimit, opts.Stats)
	s.SetSpan(opts.Span)
	return s
}

// packOrderFields returns the field comparison order for pack order: the
// last attribute is the major sort key.
func packOrderFields(arity int) []int {
	fields := make([]int, arity)
	for i := range fields {
		fields[i] = arity - 1 - i
	}
	return fields
}

// aggregateSorter drains a sorter, combining adjacent tuples with equal
// attributes, and writes the view data file.
//
// The sorter's parallel merge leaves the relative order of equal-key records
// unspecified (serial merge order was an accident of run layout too). That
// is safe here — and required to stay safe — because adjacent equal keys are
// folded with commutative, associative measure combination (SUM, COUNT,
// MIN, MAX), so the resulting ViewData is byte-identical either way.
func aggregateSorter(dir string, v lattice.View, s *extsort.Sorter, opts Options) (*ViewData, error) {
	it, err := s.Sort()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	return writeAggregated(dir, v, it, opts)
}

// writeAggregated consumes a sorted iterator of [attrs..., measures...]
// records and writes one aggregated tuple per distinct attribute
// combination.
func writeAggregated(dir string, v lattice.View, it extsort.Iterator, opts Options) (*ViewData, error) {
	f, err := os.CreateTemp(dir, "view-"+sanitize(v.Key())+"-*.dat")
	if err != nil {
		return nil, fmt.Errorf("cube: create view data: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	arity := v.Arity()
	width := enc.TupleSize(arity + opts.Schema.Len())
	keyFields := make([]int, arity)
	for i := range keyFields {
		keyFields[i] = i
	}
	curM := make([]int64, opts.Schema.Len())
	recM := make([]int64, opts.Schema.Len())
	cur := make([]byte, width)
	haveCur := false
	var rows, bytes int64
	flush := func() error {
		if !haveCur {
			return nil
		}
		if _, err := w.Write(cur); err != nil {
			return err
		}
		rows++
		bytes += int64(width)
		return nil
	}
	for {
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			os.Remove(f.Name())
			return nil, err
		}
		if haveCur && enc.EqualFields(cur, rec, keyFields) {
			for i := range curM {
				curM[i] = enc.Field(cur, arity+i)
				recM[i] = enc.Field(rec, arity+i)
			}
			opts.Schema.Fold(curM, recM)
			for i, m := range curM {
				enc.PutField(cur, arity+i, m)
			}
			continue
		}
		if err := flush(); err != nil {
			f.Close()
			os.Remove(f.Name())
			return nil, err
		}
		copy(cur, rec)
		haveCur = true
	}
	if err := flush(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return nil, err
	}
	opts.Stats.AddSequentialWrites(uint64((bytes + pager.PageSize - 1) / pager.PageSize))
	return &ViewData{View: v, Path: f.Name(), Rows: rows, Schema: opts.Schema, stats: opts.Stats}, nil
}

// deriveView computes child from a parent's data file: project (applying
// hierarchy mappings where needed), re-sort in the child's pack order,
// aggregate.
func deriveView(dir string, child lattice.View, parent *ViewData, hs hierarchySet, opts Options) (*ViewData, error) {
	plan, ok := hs.resolve(child, parent.View)
	if !ok {
		return nil, fmt.Errorf("cube: %s not derivable from %s", child, parent.View)
	}
	s := newViewSorter(dir, child, opts)
	parentArity := parent.View.Arity()
	nm := opts.Schema.Len()
	out := make([]int64, child.Arity()+nm)
	err := parent.Iterate(func(tuple []int64) error {
		for i, src := range plan {
			out[i] = src.value(tuple)
		}
		copy(out[child.Arity():], tuple[parentArity:parentArity+nm])
		return s.AddTuple(out)
	})
	if err != nil {
		return nil, err
	}
	return aggregateSorter(dir, child, s, opts)
}

// WriteTuples materializes an arbitrary pre-aggregated tuple stream as
// ViewData, used by tests and by replica construction. Tuples must already
// be [attrs..., measures...]; they are sorted into the view's pack order
// and re-aggregated (so duplicates are legal).
func WriteTuples(dir string, v lattice.View, tuples [][]int64, opts Options) (*ViewData, error) {
	if opts.MemLimit <= 0 {
		opts.MemLimit = extsort.DefaultMemLimit
	}
	if opts.Stats == nil {
		opts.Stats = &pager.Stats{}
	}
	if opts.Schema == nil {
		opts.Schema = lattice.DefaultSchema()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := newViewSorter(dir, v, opts)
	for _, t := range tuples {
		if err := s.AddTuple(t); err != nil {
			return nil, err
		}
	}
	return aggregateSorter(dir, v, s, opts)
}

// Reorder produces a replica of vd with its attributes permuted to order
// and re-sorted in the replica's pack order — the Datablade's data
// replication scheme for storing a view in multiple sort orders.
func Reorder(dir string, vd *ViewData, order []lattice.Attr, opts Options) (*ViewData, error) {
	if opts.MemLimit <= 0 {
		opts.MemLimit = extsort.DefaultMemLimit
	}
	if opts.Stats == nil {
		opts.Stats = vd.stats
	}
	if opts.Schema == nil {
		opts.Schema = vd.Schema
	}
	if !opts.Schema.Equal(vd.Schema) {
		return nil, fmt.Errorf("cube: replica schema %v differs from source %v", opts.Schema, vd.Schema)
	}
	replica, err := vd.View.Reordered(order)
	if err != nil {
		return nil, err
	}
	pos := make([]int, len(order))
	for i, a := range order {
		for j, pa := range vd.View.Attrs {
			if a == pa {
				pos[i] = j
				break
			}
		}
	}
	s := newViewSorter(dir, replica, opts)
	arity := vd.View.Arity()
	nm := vd.Schema.Len()
	out := make([]int64, arity+nm)
	err = vd.Iterate(func(tuple []int64) error {
		for i, p := range pos {
			out[i] = tuple[p]
		}
		copy(out[arity:], tuple[arity:arity+nm])
		return s.AddTuple(out)
	})
	if err != nil {
		return nil, err
	}
	return aggregateSorter(dir, replica, s, opts)
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "none"
	}
	return string(out)
}
