package cubetree_test

import (
	"strings"
	"testing"

	"cubetree"
)

const csvData = `partkey,suppkey,custkey,quantity
1,1,1,5
1,1,1,7
2,1,1,3
2,2,3,4
3,1,3,9
1,2,2,2
`

func TestCSVRowsMaterialize(t *testing.T) {
	rows, err := cubetree.CSVRows(strings.NewReader(csvData), "quantity")
	if err != nil {
		t.Fatal(err)
	}
	w, err := cubetree.Materialize(testConfig(t), testViews(), rows)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	res, err := w.Query(cubetree.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Sum != 30 || res[0].Count != 6 {
		t.Fatalf("total = %+v", res)
	}
	// Same answers as the in-memory source.
	w2, err := cubetree.Materialize(cubetree.Config{
		Dir:     t.TempDir() + "/wh2",
		Domains: map[cubetree.Attr]int64{"partkey": 3, "suppkey": 2, "custkey": 3},
	}, testViews(), facts())
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	q := cubetree.Query{
		Node:  []cubetree.Attr{"partkey", "suppkey"},
		Fixed: []cubetree.Pred{{Attr: "partkey", Value: 1}},
	}
	a, _ := w.Query(q)
	b, _ := w2.Query(q)
	if len(a) != len(b) || a[0].Sum != b[0].Sum {
		t.Fatalf("csv vs memory: %+v vs %+v", a, b)
	}
}

func TestCSVRowsErrors(t *testing.T) {
	if _, err := cubetree.CSVRows(strings.NewReader(""), "q"); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := cubetree.CSVRows(strings.NewReader("a,b\n1,2\n"), "q"); err == nil {
		t.Fatal("missing measure column accepted")
	}
	rows, err := cubetree.CSVRows(strings.NewReader("a,q\nx,2\n"), "q")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Next() {
		t.Fatal("non-integer field accepted")
	}
	if rows.Err() == nil {
		t.Fatal("error not surfaced")
	}
	// Unknown attribute lookups fail cleanly.
	rows2, _ := cubetree.CSVRows(strings.NewReader("a,q\n1,2\n"), "q")
	if !rows2.Next() {
		t.Fatal("row not read")
	}
	if _, err := rows2.Value("zzz"); err == nil {
		t.Fatal("unknown column accepted")
	}
	if v, err := rows2.Value("a"); err != nil || v != 1 {
		t.Fatalf("Value(a) = %d, %v", v, err)
	}
	if rows2.Measure() != 2 {
		t.Fatalf("Measure = %d", rows2.Measure())
	}
}
