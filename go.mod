module cubetree

go 1.22
