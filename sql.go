package cubetree

import (
	"context"
	"fmt"

	"cubetree/internal/sqlish"
)

// QuerySQL answers a slice query written in the restricted SQL dialect the
// paper's Datablade exposed:
//
//	SELECT partkey, sum(quantity) FROM sales
//	WHERE custkey = 42 AND suppkey BETWEEN 1 AND 10
//	GROUP BY partkey
//
// Supported aggregates are SUM, COUNT, AVG, MIN and MAX (MIN/MAX require
// Config.ExtraMeasures). It returns the column headers and the formatted
// result rows in canonical order.
func (w *Warehouse) QuerySQL(sql string) (headers []string, rows [][]string, err error) {
	return w.QuerySQLCtx(context.Background(), sql)
}

// QuerySQLCtx is QuerySQL under a context; see QueryCtx for the
// cancellation semantics.
func (w *Warehouse) QuerySQLCtx(ctx context.Context, sql string) (headers []string, rows [][]string, err error) {
	st, err := sqlish.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	res, err := w.QueryCtx(ctx, st.Query)
	if err != nil {
		return nil, nil, err
	}
	return st.Format(res, w.schema)
}

// Explain describes the placement the planner would use for q: the view
// (or replica) chosen and the estimated points touched. It is the
// warehouse-level view of the paper's Section 3.3 plan calibration.
func (w *Warehouse) Explain(q Query) (string, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	info, err := w.forest.Plan(q)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s -> %s on tree %d (est. cost %.1f points)",
		q, info.Placement.View, info.Placement.Tree, info.EstLeaves), nil
}

// ExplainSQL parses sql and describes its plan.
func (w *Warehouse) ExplainSQL(sql string) (string, error) {
	st, err := sqlish.Parse(sql)
	if err != nil {
		return "", err
	}
	return w.Explain(st.Query)
}
