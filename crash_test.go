package cubetree_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"cubetree"
	"cubetree/internal/pager"
)

// Crash-point harness: enumerate every injectable I/O operation performed by
// a refresh, then re-run it once per point with a simulated crash (the
// operation and everything after it fails), abandon the handle, re-open the
// warehouse, and assert it serves exactly the old or the new generation —
// never a mix, never a panic.

func increment() *sliceRows {
	return &sliceRows{
		cols:    []cubetree.Attr{"partkey", "suppkey", "custkey"},
		rows:    [][]int64{{1, 1, 1}, {3, 2, 2}},
		measure: []int64{10, 1},
	}
}

// countFaultPoints runs fn under a pure-counting injector and returns how
// many injectable operations it performed.
func countFaultPoints(t *testing.T, fn func() error) int64 {
	t.Helper()
	fi := pager.NewFaultInjector(pager.FaultCrash, -1, false)
	pager.SetFaultInjector(fi)
	defer pager.SetFaultInjector(nil)
	if err := fn(); err != nil {
		t.Fatalf("enumeration run failed: %v", err)
	}
	return fi.Points()
}

// queryState returns (total sum, total count, sum at point (1,1,1)).
func queryState(t *testing.T, w *cubetree.Warehouse) (int64, int64, int64) {
	t.Helper()
	rows, err := w.Query(cubetree.Query{})
	if err != nil {
		t.Fatalf("total query: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("total query rows = %+v", rows)
	}
	sum, count := rows[0].Sum, rows[0].Count
	rows, err = w.Query(cubetree.Query{
		Node: []cubetree.Attr{"partkey", "suppkey", "custkey"},
		Fixed: []cubetree.Pred{
			{Attr: "partkey", Value: 1}, {Attr: "suppkey", Value: 1}, {Attr: "custkey", Value: 1},
		},
	})
	if err != nil {
		t.Fatalf("point query: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("point query rows = %+v", rows)
	}
	return sum, count, rows[0].Sum
}

// assertGeneration asserts the warehouse serves exactly the pre-update state
// (generation 1: sum 30, count 6, point 12) or the post-update state
// (generation 2: sum 41, count 8, point 22), matching its Generation().
func assertGeneration(t *testing.T, w *cubetree.Warehouse, context string) int {
	t.Helper()
	sum, count, point := queryState(t, w)
	gen := w.Generation()
	switch {
	case gen == 1 && sum == 30 && count == 6 && point == 12:
	case gen == 2 && sum == 41 && count == 8 && point == 22:
	default:
		t.Fatalf("%s: inconsistent state: generation %d, sum %d, count %d, point %d",
			context, gen, sum, count, point)
	}
	return gen
}

// assertCleanDir asserts the warehouse directory holds exactly the catalog
// and the served generation — the recovery sweep removed all debris.
func assertCleanDir(t *testing.T, dir string, gen int, context string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	want := []string{fmt.Sprintf("gen-%06d", gen), "warehouse.json"}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("%s: directory = %v, want %v", context, names, want)
	}
}

func TestUpdateCrashAtEveryPoint(t *testing.T) {
	// Enumerate the injectable operations of one successful update.
	cfg := testConfig(t)
	w, err := cubetree.Materialize(cfg, testViews(), facts())
	if err != nil {
		t.Fatal(err)
	}
	n := countFaultPoints(t, func() error { return w.Update(increment()) })
	w.Close()
	if n < 10 {
		t.Fatalf("update hit only %d fault points; injection hooks missing?", n)
	}

	for _, torn := range []bool{false, true} {
		for k := int64(0); k < n; k++ {
			context := fmt.Sprintf("torn=%v crash at point %d/%d", torn, k, n)
			cfg := testConfig(t)
			w, err := cubetree.Materialize(cfg, testViews(), facts())
			if err != nil {
				t.Fatal(err)
			}
			fi := pager.NewFaultInjector(pager.FaultCrash, k, torn)
			pager.SetFaultInjector(fi)
			updateErr := w.Update(increment())
			w.Close() // abandon the handle: all I/O is already dead
			pager.SetFaultInjector(nil)
			if !fi.Tripped() {
				t.Fatalf("%s: injector never tripped (ops: %v)", context, fi.Ops())
			}

			stats := &cubetree.Stats{}
			w2, err := cubetree.Open(cfg.Dir, stats)
			if err != nil {
				t.Fatalf("%s: reopen failed: %v", context, err)
			}
			gen := assertGeneration(t, w2, context)
			if updateErr == nil && gen != 2 {
				// The update reported success, so the commit must be durable.
				t.Fatalf("%s: update returned nil but reopened generation %d", context, gen)
			}
			assertCleanDir(t, cfg.Dir, gen, context)
			if err := w2.Verify(); err != nil {
				t.Fatalf("%s: verify after recovery: %v", context, err)
			}
			// The recovered warehouse must accept the increment (again if it
			// had committed, the measures just keep folding).
			if gen == 1 {
				if err := w2.Update(increment()); err != nil {
					t.Fatalf("%s: retry update failed: %v", context, err)
				}
				if got := assertGeneration(t, w2, context+" after retry"); got != 2 {
					t.Fatalf("%s: retry left generation %d", context, got)
				}
			}
			w2.Close()
		}
	}
}

func TestMaterializeCrashAtEveryPoint(t *testing.T) {
	n := countFaultPoints(t, func() error {
		w, err := cubetree.Materialize(testConfig(t), testViews(), facts())
		if err != nil {
			return err
		}
		return w.Close()
	})
	if n < 5 {
		t.Fatalf("materialize hit only %d fault points", n)
	}

	for k := int64(0); k < n; k++ {
		context := fmt.Sprintf("crash at point %d/%d", k, n)
		cfg := testConfig(t)
		fi := pager.NewFaultInjector(pager.FaultCrash, k, true)
		pager.SetFaultInjector(fi)
		w, err := cubetree.Materialize(cfg, testViews(), facts())
		if err == nil {
			w.Close()
		}
		pager.SetFaultInjector(nil)

		// Either the crash struck before the catalog committed — then the
		// directory holds no warehouse and a fresh Materialize must succeed
		// over the debris — or it struck after, and Open serves generation 1.
		w2, err := cubetree.Open(cfg.Dir, nil)
		if err != nil {
			w2, err = cubetree.Materialize(cfg, testViews(), facts())
			if err != nil {
				t.Fatalf("%s: re-materialize over debris failed: %v", context, err)
			}
		}
		sum, count, point := queryState(t, w2)
		if sum != 30 || count != 6 || point != 12 {
			t.Fatalf("%s: recovered totals sum %d count %d point %d", context, sum, count, point)
		}
		if err := w2.Verify(); err != nil {
			t.Fatalf("%s: verify: %v", context, err)
		}
		w2.Close()
	}
}

func TestUpdateSurvivesTransientFaults(t *testing.T) {
	cfg := testConfig(t)
	w, err := cubetree.Materialize(cfg, testViews(), facts())
	if err != nil {
		t.Fatal(err)
	}
	n := countFaultPoints(t, func() error { return w.Update(increment()) })
	w.Close()

	for k := int64(0); k < n; k++ {
		context := fmt.Sprintf("transient fault at point %d/%d", k, n)
		cfg := testConfig(t)
		w, err := cubetree.Materialize(cfg, testViews(), facts())
		if err != nil {
			t.Fatal(err)
		}
		fi := pager.NewFaultInjector(pager.FaultTransient, k, false)
		pager.SetFaultInjector(fi)
		updateErr := w.Update(increment())
		pager.SetFaultInjector(nil)

		if updateErr != nil {
			// The failed update must leave the old generation serving, and a
			// retry must go through.
			if got := assertGeneration(t, w, context); got != 1 {
				t.Fatalf("%s: failed update switched to generation %d", context, got)
			}
			if err := w.Update(increment()); err != nil {
				t.Fatalf("%s: retry failed: %v", context, err)
			}
		}
		if got := assertGeneration(t, w, context+" final"); got != 2 {
			t.Fatalf("%s: final generation %d", context, got)
		}
		w.Close()
	}
}

func TestOpenSweepsOrphans(t *testing.T) {
	cfg := testConfig(t)
	w, err := cubetree.Materialize(cfg, testViews(), facts())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant debris of every kind a crash can leave behind.
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "scratch"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cfg.Dir, "scratch", "run0.bin"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "gen-000099"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cfg.Dir, "warehouse.json.tmp-123"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	stats := &cubetree.Stats{}
	w2, err := cubetree.Open(cfg.Dir, stats)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	assertCleanDir(t, cfg.Dir, 1, "after sweep")
	if got := stats.StaleRemoved(); got != 3 {
		t.Fatalf("StaleRemoved = %d, want 3", got)
	}
	sum, count, _ := queryState(t, w2)
	if sum != 30 || count != 6 {
		t.Fatalf("post-sweep totals = %d/%d", sum, count)
	}
}
