package cubetree_test

import (
	"fmt"
	"log"
	"os"

	"cubetree"
)

// exampleRows is a tiny in-memory fact stream over (product, region).
type exampleRows struct {
	rows [][3]int64 // product, region, quantity
	i    int
}

func (s *exampleRows) Next() bool { s.i++; return s.i <= len(s.rows) }
func (s *exampleRows) Value(a cubetree.Attr) (int64, error) {
	switch a {
	case "product":
		return s.rows[s.i-1][0], nil
	case "region":
		return s.rows[s.i-1][1], nil
	}
	return 0, fmt.Errorf("unknown attribute %q", a)
}
func (s *exampleRows) Measure() int64 { return s.rows[s.i-1][2] }

// ExampleWarehouse_QuerySQL answers the same slice query through the SQL
// dialect.
func ExampleWarehouse_QuerySQL() {
	dir, err := os.MkdirTemp("", "cubetree-sql-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	w, err := cubetree.Materialize(cubetree.Config{
		Dir:     dir,
		Domains: map[cubetree.Attr]int64{"product": 3, "region": 2},
	}, []cubetree.View{
		cubetree.NewView("by-product-region", "product", "region"),
	}, &exampleRows{rows: [][3]int64{
		{1, 1, 10}, {1, 2, 5}, {2, 1, 7}, {1, 1, 4},
	}})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()

	headers, rows, err := w.QuerySQL(
		"SELECT region, sum(quantity), avg(quantity) FROM sales WHERE product = 1 GROUP BY region")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(headers)
	for _, r := range rows {
		fmt.Println(r)
	}
	// Output:
	// [region sum(quantity) avg(quantity)]
	// [1 14 7.00]
	// [2 5 5.00]
}

// Example materializes two views, queries a slice, and applies a bulk
// update.
func Example() {
	dir, err := os.MkdirTemp("", "cubetree-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	w, err := cubetree.Materialize(cubetree.Config{
		Dir:     dir,
		Domains: map[cubetree.Attr]int64{"product": 3, "region": 2},
	}, []cubetree.View{
		cubetree.NewView("by-product-region", "product", "region"),
		cubetree.NewView("total"),
	}, &exampleRows{rows: [][3]int64{
		{1, 1, 10}, {1, 2, 5}, {2, 1, 7}, {1, 1, 4},
	}})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()

	rows, err := w.Query(cubetree.Query{
		Node:  []cubetree.Attr{"product", "region"},
		Fixed: []cubetree.Pred{{Attr: "product", Value: 1}},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("product %d region %d: sum=%d\n", r.Group[0], r.Group[1], r.Sum)
	}

	if err := w.Update(&exampleRows{rows: [][3]int64{{1, 2, 100}}}); err != nil {
		log.Fatal(err)
	}
	rows, _ = w.Query(cubetree.Query{})
	fmt.Printf("total after update: %d\n", rows[0].Sum)

	// Output:
	// product 1 region 1: sum=14
	// product 1 region 2: sum=5
	// total after update: 126
}
