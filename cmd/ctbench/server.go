package main

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cubetree/internal/lattice"
	"cubetree/internal/server"
	"cubetree/internal/workload"
)

// runServerSweep is the throughput sweep pointed at a running cubetreed:
// the same mixed per-view query stream as the local experiment, but every
// query travels over HTTP through the daemon's admission path, so what is
// measured is the serving stack — parsing, gating, caching, shedding —
// not just the engine. Shed responses are counted, retried by the client,
// and reported; they are the expected behaviour past the admission limit,
// not errors.
func runServerSweep(base string, queries int, seed uint64, clients []int) error {
	var retries atomic.Int64
	c := &server.Client{
		Base:    strings.TrimRight(base, "/"),
		OnRetry: func(int, int, time.Duration) { retries.Add(1) },
	}
	ctx := context.Background()
	views, err := c.Views(ctx)
	if err != nil {
		return fmt.Errorf("fetch /views: %w", err)
	}
	if len(views.Views) == 0 {
		return fmt.Errorf("server at %s reports no views", base)
	}
	domains := map[lattice.Attr]int64{}
	for a, d := range views.Domains {
		domains[lattice.Attr(a)] = d
	}

	// One generator per served view, interleaved round-robin — the shape
	// of the local RunThroughput batch.
	gens := make([]*workload.Generator, len(views.Views))
	nodes := make([][]lattice.Attr, len(views.Views))
	for i, v := range views.Views {
		gens[i] = workload.NewGenerator(seed+uint64(i)*7919, domains)
		for _, a := range v.Attrs {
			nodes[i] = append(nodes[i], lattice.Attr(a))
		}
	}
	var sqls []string
	for q := 0; q < queries; q++ {
		for i := range views.Views {
			sqls = append(sqls, server.SQLFor(gens[i].ForNode(nodes[i])))
		}
	}

	fmt.Printf("server throughput sweep against %s: %d queries over %d views (generation %d)\n",
		c.Base, len(sqls), len(views.Views), views.Generation)
	fmt.Printf("  %8s %10s %10s %8s %8s %8s\n", "clients", "qps", "wall", "cached", "retries", "shed")
	for _, nClients := range clients {
		retries.Store(0)
		var (
			wg     sync.WaitGroup
			next   = make(chan string)
			cached atomic.Int64
			shed   atomic.Int64
			fail   atomic.Value
		)
		start := time.Now()
		for w := 0; w < nClients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for sql := range next {
					res, err := c.Query(ctx, sql)
					if err != nil {
						if apiErr, ok := err.(*server.APIError); ok && (apiErr.Status == 429 || apiErr.Status == 503) {
							shed.Add(1)
							continue
						}
						fail.CompareAndSwap(nil, err)
						continue
					}
					if res.Cached {
						cached.Add(1)
					}
				}
			}()
		}
		for _, sql := range sqls {
			next <- sql
		}
		close(next)
		wg.Wait()
		if err, ok := fail.Load().(error); ok && err != nil {
			return fmt.Errorf("@%d clients: %w", nClients, err)
		}
		wall := time.Since(start)
		fmt.Printf("  %8d %10.1f %10v %8d %8d %8d\n",
			nClients, float64(len(sqls))/wall.Seconds(), wall.Round(time.Millisecond),
			cached.Load(), retries.Load(), shed.Load())
	}
	return nil
}
