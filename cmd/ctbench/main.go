// Command ctbench regenerates every table and figure of the paper's
// evaluation section on a scaled TPC-D dataset:
//
//	ctbench -exp all -sf 0.01
//	ctbench -exp table6,fig12,table7 -sf 0.02 -queries 100
//
// Each experiment prints the same rows or series the paper reports, in both
// modelled 1998-disk time (the reproduction) and wall clock.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cubetree"

	"cubetree/internal/experiment"
	"cubetree/internal/greedy"
	"cubetree/internal/lattice"
	"cubetree/internal/pager"
	"cubetree/internal/tpcd"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiments: table5,table6,storage,fig12,fig13,fig14,table7,throughput,scaling,greedy,ablations or all")
		sf      = flag.Float64("sf", 0.01, "TPC-D scale factor (1.0 = the paper's 1 GB)")
		seed    = flag.Uint64("seed", 1998, "random seed")
		queries = flag.Int("queries", 100, "queries per view (Figure 12/13/14)")
		pool    = flag.Int("pool", 0, "buffer pool pages per structure (0 = auto: ~3% of data, like the paper's 32 MB vs 1 GB)")
		model   = flag.String("model", "disk-1998", "I/O cost model: disk-1998 or ssd-2020")
		dir     = flag.String("dir", "", "working directory (default: temp)")
		csvDir  = flag.String("csv", "", "also write each artifact as CSV into this directory")
		noRepl  = flag.Bool("no-replicas", false, "disable the top view's replica sort orders")
		asJSON  = flag.Bool("json", false, "write machine-readable results (throughput -> BENCH_throughput.json)")
		compare = flag.String("compare", "", "compare the throughput sweep against this BENCH_throughput.json baseline; exit 1 on regression")
		thresh  = flag.Float64("compare-threshold", experiment.DefaultTrendThreshold, "fractional QPS drop flagged as a regression by -compare")
		dbgAddr = flag.String("debug-addr", "", "serve /debug/metrics, /debug/traces, and pprof on this address while the run is live")
		slow    = flag.Duration("slow", 0, "log queries at or above this latency to the slow-query log (0 = off)")
		srvURL  = flag.String("server", "", "run the throughput sweep against a running cubetreed at this URL instead of building a local setup")
		packFmt = flag.Int("pack-format", 0, "Cubetree leaf format: 1 = row-major v1, 2 = columnar v2 (0 = library default)")
		measure = flag.Duration("measure", time.Second, "minimum measurement window per throughput-sweep row (batch repeats to fill it; 0 = single pass)")
		workers = flag.String("workers", "1,2,4", "cluster sizes for -exp scaling, comma-separated")
	)
	flag.Parse()

	if *srvURL != "" {
		if err := runServerSweep(*srvURL, *queries, *seed, experiment.DefaultClients()); err != nil {
			fatal(err)
		}
		return
	}

	m := pager.Disk1998
	if *model == "ssd-2020" {
		m = pager.SSD2020
	}
	p := experiment.Params{
		SF:             *sf,
		Seed:           *seed,
		QueriesPerView: *queries,
		PoolPages:      *pool,
		Model:          m,
		Replicas:       !*noRepl,
		Dir:            *dir,
		PackFormat:     *packFmt,
		MinMeasure:     *measure,
	}
	if p.PoolPages <= 0 {
		// ~3% of the top view's pages, min 8 — the paper's memory:data ratio.
		p.PoolPages = int(6001215.0 * *sf * 40 / 8192 * 0.03)
		if p.PoolPages < 8 {
			p.PoolPages = 8
		}
	}

	var o *cubetree.Observer
	if *dbgAddr != "" || *slow > 0 {
		o = cubetree.NewObserver(cubetree.ObserverOptions{SlowThreshold: *slow})
		p.Obs = o
	}
	if *dbgAddr != "" {
		srv, err := cubetree.ServeDebug(*dbgAddr, nil, o)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug server on http://%s/debug/metrics\n", srv.Addr())
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	need := func(name string) bool { return all || want[name] }

	if need("greedy") {
		runGreedy(*sf)
	}

	needsSetup := need("table5") || need("table6") || need("storage") ||
		need("fig12") || need("fig13") || need("table7") || need("throughput")
	var s *experiment.Setup
	if needsSetup {
		fmt.Printf("building setup: SF=%.4g (%d fact rows), pool %d pages/structure, model %s\n\n",
			*sf, tpcd.New(tpcd.Params{SF: *sf, Seed: *seed}).Facts, p.PoolPages, m.Name)
		var err error
		s, err = experiment.NewSetup(p)
		if err != nil {
			fatal(err)
		}
		defer s.Close()
		if o != nil {
			// Surface the Cubetree configuration's page I/O under the "io"
			// key of /debug/metrics.
			o.Registry.AttachStats(s.CubeStats())
		}
	}

	csv := func(name, content string) {
		if *csvDir == "" {
			return
		}
		if err := experiment.WriteCSV(*csvDir, name, content); err != nil {
			fatal(err)
		}
	}

	if need("table5") {
		tab := s.RunTable5()
		fmt.Println(tab)
		csv("table5.csv", tab.CSV())
	}
	if need("table6") {
		tab := s.RunTable6()
		fmt.Println(tab)
		csv("table6.csv", tab.CSV())
	}
	if need("storage") {
		st := s.RunStorage()
		fmt.Println(st)
		csv("storage.csv", st.CSV())
	}
	if need("fig12") || need("fig13") {
		fig, err := s.RunFig12()
		if err != nil {
			fatal(err)
		}
		if need("fig12") {
			fmt.Println(fig)
			fmt.Println(fig.Chart())
			csv("fig12.csv", fig.CSV())
		}
		if need("fig13") {
			th := experiment.RunFig13(fig)
			fmt.Println(th)
			fmt.Println(th.Chart())
			csv("fig13.csv", th.CSV())
		}
	}
	if need("throughput") {
		tp, err := s.RunThroughput(experiment.DefaultClients())
		if err != nil {
			fatal(err)
		}
		fmt.Println(tp)
		if *asJSON {
			data, err := json.MarshalIndent(tp, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile("BENCH_throughput.json", append(data, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Println("wrote BENCH_throughput.json")
		}
		if *compare != "" {
			base, err := experiment.LoadThroughput(*compare)
			if err != nil {
				fatal(err)
			}
			rep := experiment.CompareThroughput(base, tp, experiment.TrendOptions{Threshold: *thresh})
			fmt.Print(rep)
			if rep.Regressed() {
				fatal(fmt.Errorf("%d throughput regression(s) beyond %.1f%% vs %s",
					len(rep.Regressions()), 100*rep.Threshold, *compare))
			}
		}
	}
	if need("table7") {
		t7, err := s.RunTable7()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t7)
		csv("table7.csv", t7.CSV())
	}
	if need("ablations") {
		ab, err := experiment.RunAblations(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(ab)
		csv("ablations.csv", ab.CSV())
	}
	if need("scaling") {
		ws, err := parseWorkers(*workers)
		if err != nil {
			fatal(err)
		}
		sc, err := experiment.RunScaling(experiment.ScalingParams{
			SF:             *sf,
			Seed:           *seed,
			QueriesPerView: *queries,
			PoolPages:      *pool,
			Workers:        ws,
			MinMeasure:     *measure,
			PackFormat:     *packFmt,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(sc)
		if *asJSON {
			data, err := json.MarshalIndent(sc, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile("BENCH_scaling.json", append(data, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Println("wrote BENCH_scaling.json")
		}
	}
	if need("fig14") {
		fig, err := experiment.RunFig14(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(fig)
		fmt.Println(fig.Chart())
		csv("fig14.csv", fig.CSV())
	}
}

// runGreedy prints the 1-greedy selection trace on paper-scale sizes,
// mirroring the selection quoted in Section 3.
func runGreedy(sf float64) {
	ds := tpcd.New(tpcd.Params{SF: sf})
	dims := []lattice.Attr{tpcd.AttrPart, tpcd.AttrSupplier, tpcd.AttrCustomer}
	lat, err := lattice.New(dims, ds.Domains())
	if err != nil {
		fatal(err)
	}
	// Exact sizes would need a counting pass; Yao estimates plus the
	// PARTSUPP correlation match the generator closely.
	sizes := map[string]int64{
		lattice.CanonKey([]lattice.Attr{tpcd.AttrPart, tpcd.AttrSupplier}): 4 * ds.Parts,
	}
	sel := greedy.Select(lat, ds.Facts, sizes, 9)
	fmt.Println("1-greedy view and index selection (GHRU97), 9 steps:")
	for i, step := range sel.Trace {
		fmt.Printf("  %d. %-34s benefit %14.0f  benefit/space %10.2f\n",
			i+1, step.Pick.String(), step.Benefit, step.PerSpace)
	}
	fmt.Println()
}

// parseWorkers parses the -workers axis ("1,2,4") into cluster sizes.
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(part, "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workers lists no cluster sizes")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctbench:", err)
	os.Exit(1)
}
