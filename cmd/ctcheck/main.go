// Command ctcheck is an offline integrity scrubber for Cubetree warehouses:
//
//	ctcheck -dir ./wh
//	ctcheck -dir ./wh -json
//
// It walks every page of every tree file of the committed generation,
// verifies the per-page checksums, and then re-validates the forest's
// structural and catalog invariants (packing order, MBR containment, point
// totals, and forest.json's declared pack_format against the leaf layouts
// actually on disk). It never modifies the warehouse. The exit status is 0 when the
// warehouse is intact and 1 when any damage was found, so it can gate
// backups and restarts in scripts. With -json the report is a single
// machine-readable document on stdout (the scrub metrics registry snapshot
// plus the verdict), in the style of ctbench's -json artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cubetree/internal/core"
	"cubetree/internal/obs"
	"cubetree/internal/pager"
)

// scrub aggregates everything one run measures: the metrics registry the
// scrub counters flow through, and where human-readable notes go (stdout
// normally, stderr under -json so stdout stays a clean document).
type scrub struct {
	out   io.Writer
	stats *pager.Stats
	reg   *obs.Registry
	trees []treeScrub
	// packFormat is forest.json's declared leaf layout (0 when the catalog
	// predates the field), cross-checked against the per-tree leaf census.
	packFormat int

	filesScrubbed *obs.Counter // scrub_files_total
	filesDamaged  *obs.Counter // scrub_files_damaged
	pagesDamaged  *obs.Counter // scrub_pages_damaged
	orphans       *obs.Counter // scrub_orphans
	errors        *obs.Counter // scrub_errors_total
}

// treeScrub is one tree file's scrub measurement, reported per tree under
// -json so slow or damaged trees stand out individually.
type treeScrub struct {
	Name         string `json:"name"`
	Pages        uint64 `json:"pages"`
	DamagedPages uint64 `json:"damaged_pages"`
	DurationNS   int64  `json:"duration_ns"`
	Checksummed  bool   `json:"checksummed"`
	// Leaf-format census from the decode-verify pass: which layout the
	// tree's leaves use (1 = row-major, 2 = columnar) and the per-format
	// page counts. Zero when the structural pass could not run.
	LeafFormat int    `json:"leaf_format,omitempty"`
	V1Leaves   uint64 `json:"v1_leaves,omitempty"`
	V2Leaves   uint64 `json:"v2_leaves,omitempty"`
}

func newScrub(out io.Writer) *scrub {
	s := &scrub{out: out, stats: &pager.Stats{}, reg: obs.NewRegistry()}
	s.reg.AttachStats(s.stats)
	s.filesScrubbed = s.reg.Counter("scrub_files_total")
	s.filesDamaged = s.reg.Counter("scrub_files_damaged")
	s.pagesDamaged = s.reg.Counter("scrub_pages_damaged")
	s.orphans = s.reg.Counter("scrub_orphans")
	s.errors = s.reg.Counter("scrub_errors_total")
	return s
}

// report is the -json output document.
type report struct {
	Dir              string       `json:"dir"`
	OK               bool         `json:"ok"`
	PagesScrubbed    uint64       `json:"pages_scrubbed"`
	ChecksumFailures uint64       `json:"checksum_failures"`
	Trees            []treeScrub  `json:"trees"`
	Metrics          obs.Snapshot `json:"metrics"`
}

func main() {
	var (
		dir     = flag.String("dir", "", "warehouse directory, or a single forest directory (required)")
		verbose = flag.Bool("v", false, "report every file scrubbed, not just damage")
		asJSON  = flag.Bool("json", false, "write a machine-readable report to stdout")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "ctcheck: -dir is required")
		os.Exit(2)
	}

	out := io.Writer(os.Stdout)
	if *asJSON {
		out = os.Stderr
	}
	s := newScrub(out)

	forestDir, err := s.resolveForestDir(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcheck: %v\n", err)
		os.Exit(2)
	}

	damaged := s.scrubForest(forestDir, *verbose)
	damaged = s.checkInvariants(forestDir, *verbose) || damaged

	if *asJSON {
		rep := report{
			Dir:              forestDir,
			OK:               !damaged,
			PagesScrubbed:    s.stats.PagesScrubbed(),
			ChecksumFailures: s.stats.ChecksumFailures(),
			Trees:            s.trees,
			Metrics:          s.reg.Snapshot(),
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctcheck: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(string(data))
	} else {
		fmt.Fprintf(out, "%d pages scrubbed, %d checksum failures\n",
			s.stats.PagesScrubbed(), s.stats.ChecksumFailures())
		if damaged {
			fmt.Fprintln(out, "DAMAGED")
		} else {
			fmt.Fprintln(out, "OK")
		}
	}
	if damaged {
		os.Exit(1)
	}
}

// resolveForestDir maps the -dir argument to the forest directory to check:
// a warehouse directory is followed to its committed generation (warning
// about any crash debris on the way), while a directory holding forest.json
// is checked as-is.
func (s *scrub) resolveForestDir(dir string) (string, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "warehouse.json"))
	if os.IsNotExist(err) {
		if _, err := os.Stat(filepath.Join(dir, "forest.json")); err != nil {
			return "", fmt.Errorf("%s holds neither warehouse.json nor forest.json", dir)
		}
		return dir, nil
	}
	if err != nil {
		return "", err
	}
	var cat struct {
		Generation int `json:"generation"`
	}
	if err := json.Unmarshal(raw, &cat); err != nil {
		return "", fmt.Errorf("parse warehouse.json: %w", err)
	}
	keep := fmt.Sprintf("gen-%06d", cat.Generation)
	// Orphans are not damage — a crash can leave them and Open sweeps them —
	// but an operator running a scrubber wants to know.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		name := e.Name()
		switch {
		case name == keep || name == "warehouse.json":
		case e.IsDir() && (name == "scratch" || strings.HasPrefix(name, "gen-")):
			s.orphans.Inc()
			fmt.Fprintf(s.out, "warning: orphan directory %s (crash debris; removed on next Open)\n", name)
		case !e.IsDir() && strings.Contains(name, ".tmp-"):
			s.orphans.Inc()
			fmt.Fprintf(s.out, "warning: orphan temp file %s\n", name)
		}
	}
	return filepath.Join(dir, keep), nil
}

// scrubForest reads every page of every tree file named by the forest
// catalog, verifying checksums. It keeps going past damage so one bad page
// does not hide another, and reports whether any was found.
func (s *scrub) scrubForest(dir string, verbose bool) bool {
	raw, err := os.ReadFile(filepath.Join(dir, "forest.json"))
	if err != nil {
		s.errors.Inc()
		fmt.Fprintf(s.out, "error: %v\n", err)
		return true
	}
	var cat struct {
		Trees      []string `json:"trees"`
		PackFormat int      `json:"pack_format"`
	}
	if err := json.Unmarshal(raw, &cat); err != nil {
		s.errors.Inc()
		fmt.Fprintf(s.out, "error: parse forest.json: %v\n", err)
		return true
	}
	s.packFormat = cat.PackFormat
	damaged := false
	for _, name := range cat.Trees {
		path := filepath.Join(dir, name)
		f, err := pager.Open(path, s.stats)
		if err != nil {
			s.errors.Inc()
			fmt.Fprintf(s.out, "error: %v\n", err)
			damaged = true
			continue
		}
		s.filesScrubbed.Inc()
		if !f.Checksummed() {
			fmt.Fprintf(s.out, "note: %s predates page checksums; contents cannot be verified\n", name)
		}
		bad := 0
		start := time.Now()
		buf := make([]byte, pager.PageSize)
		for id := pager.PageID(0); id < pager.PageID(f.NumPages()); id++ {
			if err := f.ReadPage(id, buf); err != nil {
				fmt.Fprintf(s.out, "error: %v\n", err)
				bad++
			}
		}
		s.stats.AddPagesScrubbed(uint64(f.NumPages()))
		s.trees = append(s.trees, treeScrub{
			Name:         name,
			Pages:        uint64(f.NumPages()),
			DamagedPages: uint64(bad),
			DurationNS:   time.Since(start).Nanoseconds(),
			Checksummed:  f.Checksummed(),
		})
		if bad > 0 {
			damaged = true
			s.filesDamaged.Inc()
			s.pagesDamaged.Add(uint64(bad))
			fmt.Fprintf(s.out, "%s: %d damaged pages of %d\n", name, bad, f.NumPages())
		} else if verbose {
			fmt.Fprintf(s.out, "%s: %d pages clean\n", name, f.NumPages())
		}
		f.Close()
	}
	return damaged
}

// checkInvariants opens the forest read-only and runs the full structural
// validation: every placement's run exists with matching arity, point totals
// add up, and every tree satisfies packing order and MBR containment.
func (s *scrub) checkInvariants(dir string, verbose bool) bool {
	f, err := core.Open(dir, s.stats)
	if err != nil {
		s.errors.Inc()
		fmt.Fprintf(s.out, "error: open forest: %v\n", err)
		return true
	}
	defer f.Close()
	if err := f.Validate(); err != nil {
		s.errors.Inc()
		fmt.Fprintf(s.out, "error: %v\n", err)
		return true
	}
	damaged := false
	for i := 0; i < f.Trees(); i++ {
		// Decode-verify every leaf: node kinds must be known, and v2 column
		// blocks must parse in bounds with zone maps matching the decoded
		// data. Validate already walked the points; this catches format-level
		// corruption that still decodes to structurally valid points.
		info, err := f.Tree(i).ScrubLeaves()
		if err != nil {
			s.errors.Inc()
			fmt.Fprintf(s.out, "error: tree %d: %v\n", i, err)
			damaged = true
			continue
		}
		if i < len(s.trees) {
			s.trees[i].LeafFormat = info.Format()
			s.trees[i].V1Leaves = info.V1Leaves
			s.trees[i].V2Leaves = info.V2Leaves
		}
		// Cross-check the catalog's declared leaf layout against what is
		// actually on disk: a forest claiming v2 must hold no v1 leaves and
		// vice versa. Catalogs written before pack_format existed declare 0;
		// that is noted, not failed, since the census alone is authoritative
		// for them.
		switch {
		case s.packFormat == 0:
			if i == 0 && (info.V1Leaves > 0 || info.V2Leaves > 0) {
				fmt.Fprintf(s.out, "note: forest.json predates pack_format; leaf census not cross-checked\n")
			}
		case s.packFormat == 1 && info.V2Leaves > 0:
			s.errors.Inc()
			fmt.Fprintf(s.out, "error: tree %d: forest.json declares pack_format v1 but %d columnar v2 leaves are on disk\n",
				i, info.V2Leaves)
			damaged = true
		case s.packFormat == 2 && info.V1Leaves > 0:
			s.errors.Inc()
			fmt.Fprintf(s.out, "error: tree %d: forest.json declares pack_format v2 but %d row-major v1 leaves are on disk\n",
				i, info.V1Leaves)
			damaged = true
		}
		if verbose {
			fmt.Fprintf(s.out, "tree %d: leaf format v%d (%d v1 leaves, %d v2 leaves, %d points)\n",
				i, info.Format(), info.V1Leaves, info.V2Leaves, info.Points)
		}
	}
	if verbose {
		fmt.Fprintf(s.out, "catalog: %d trees, %d placements, %d points\n",
			f.Trees(), len(f.Placements()), f.Points())
	}
	return damaged
}
