// Command ctcheck is an offline integrity scrubber for Cubetree warehouses:
//
//	ctcheck -dir ./wh
//
// It walks every page of every tree file of the committed generation,
// verifies the per-page checksums, and then re-validates the forest's
// structural and catalog invariants (packing order, MBR containment, point
// totals). It never modifies the warehouse. The exit status is 0 when the
// warehouse is intact and 1 when any damage was found, so it can gate
// backups and restarts in scripts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cubetree/internal/core"
	"cubetree/internal/pager"
)

func main() {
	var (
		dir     = flag.String("dir", "", "warehouse directory, or a single forest directory (required)")
		verbose = flag.Bool("v", false, "report every file scrubbed, not just damage")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "ctcheck: -dir is required")
		os.Exit(2)
	}

	forestDir, err := resolveForestDir(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcheck: %v\n", err)
		os.Exit(2)
	}

	stats := &pager.Stats{}
	damaged := scrubForest(forestDir, stats, *verbose)
	damaged = checkInvariants(forestDir, stats, *verbose) || damaged

	fmt.Printf("%d pages scrubbed, %d checksum failures\n",
		stats.PagesScrubbed(), stats.ChecksumFailures())
	if damaged {
		fmt.Println("DAMAGED")
		os.Exit(1)
	}
	fmt.Println("OK")
}

// resolveForestDir maps the -dir argument to the forest directory to check:
// a warehouse directory is followed to its committed generation (warning
// about any crash debris on the way), while a directory holding forest.json
// is checked as-is.
func resolveForestDir(dir string) (string, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "warehouse.json"))
	if os.IsNotExist(err) {
		if _, err := os.Stat(filepath.Join(dir, "forest.json")); err != nil {
			return "", fmt.Errorf("%s holds neither warehouse.json nor forest.json", dir)
		}
		return dir, nil
	}
	if err != nil {
		return "", err
	}
	var cat struct {
		Generation int `json:"generation"`
	}
	if err := json.Unmarshal(raw, &cat); err != nil {
		return "", fmt.Errorf("parse warehouse.json: %w", err)
	}
	keep := fmt.Sprintf("gen-%06d", cat.Generation)
	// Orphans are not damage — a crash can leave them and Open sweeps them —
	// but an operator running a scrubber wants to know.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		name := e.Name()
		switch {
		case name == keep || name == "warehouse.json":
		case e.IsDir() && (name == "scratch" || strings.HasPrefix(name, "gen-")):
			fmt.Printf("warning: orphan directory %s (crash debris; removed on next Open)\n", name)
		case !e.IsDir() && strings.Contains(name, ".tmp-"):
			fmt.Printf("warning: orphan temp file %s\n", name)
		}
	}
	return filepath.Join(dir, keep), nil
}

// scrubForest reads every page of every tree file named by the forest
// catalog, verifying checksums. It keeps going past damage so one bad page
// does not hide another, and reports whether any was found.
func scrubForest(dir string, stats *pager.Stats, verbose bool) bool {
	raw, err := os.ReadFile(filepath.Join(dir, "forest.json"))
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return true
	}
	var cat struct {
		Trees []string `json:"trees"`
	}
	if err := json.Unmarshal(raw, &cat); err != nil {
		fmt.Printf("error: parse forest.json: %v\n", err)
		return true
	}
	damaged := false
	for _, name := range cat.Trees {
		path := filepath.Join(dir, name)
		f, err := pager.Open(path, stats)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			damaged = true
			continue
		}
		if !f.Checksummed() {
			fmt.Printf("note: %s predates page checksums; contents cannot be verified\n", name)
		}
		bad := 0
		buf := make([]byte, pager.PageSize)
		for id := pager.PageID(0); id < pager.PageID(f.NumPages()); id++ {
			if err := f.ReadPage(id, buf); err != nil {
				fmt.Printf("error: %v\n", err)
				bad++
			}
		}
		stats.AddPagesScrubbed(uint64(f.NumPages()))
		if bad > 0 {
			damaged = true
			fmt.Printf("%s: %d damaged pages of %d\n", name, bad, f.NumPages())
		} else if verbose {
			fmt.Printf("%s: %d pages clean\n", name, f.NumPages())
		}
		f.Close()
	}
	return damaged
}

// checkInvariants opens the forest read-only and runs the full structural
// validation: every placement's run exists with matching arity, point totals
// add up, and every tree satisfies packing order and MBR containment.
func checkInvariants(dir string, stats *pager.Stats, verbose bool) bool {
	f, err := core.Open(dir, stats)
	if err != nil {
		fmt.Printf("error: open forest: %v\n", err)
		return true
	}
	defer f.Close()
	if err := f.Validate(); err != nil {
		fmt.Printf("error: %v\n", err)
		return true
	}
	if verbose {
		fmt.Printf("catalog: %d trees, %d placements, %d points\n",
			f.Trees(), len(f.Placements()), f.Points())
	}
	return false
}
