package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"cubetree"
)

type sliceRows struct {
	cols    []cubetree.Attr
	rows    [][]int64
	measure []int64
	i       int
}

func (s *sliceRows) Next() bool { s.i++; return s.i <= len(s.rows) }
func (s *sliceRows) Value(a cubetree.Attr) (int64, error) {
	for j, c := range s.cols {
		if c == a {
			return s.rows[s.i-1][j], nil
		}
	}
	return 0, nil
}
func (s *sliceRows) Measure() int64 { return s.measure[s.i-1] }

// TestPackFormatCrossCheck builds the scrubber, runs it against a clean
// warehouse (exit 0), then rewrites forest.json to declare the wrong
// pack_format and asserts the census mismatch is caught with exit 1.
func TestPackFormatCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the ctcheck binary; skipped in -short")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	whDir := filepath.Join(dir, "wh")
	w, err := cubetree.Materialize(
		cubetree.Config{Dir: whDir, Domains: map[cubetree.Attr]int64{"a": 4, "b": 4}},
		[]cubetree.View{cubetree.NewView("ab", "a", "b"), cubetree.NewView("a", "a")},
		&sliceRows{
			cols:    []cubetree.Attr{"a", "b"},
			rows:    [][]int64{{1, 1}, {2, 3}, {3, 2}, {4, 4}},
			measure: []int64{5, 3, 4, 9},
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	bin := filepath.Join(dir, "ctcheck")
	if out, err := exec.Command("go", "build", "-o", bin, "cubetree/cmd/ctcheck").CombinedOutput(); err != nil {
		t.Fatalf("go build ctcheck: %v\n%s", err, out)
	}

	if out, err := exec.Command(bin, "-dir", whDir).CombinedOutput(); err != nil {
		t.Fatalf("clean warehouse flagged: %v\n%s", err, out)
	}

	// Flip the declared layout; the on-disk leaves no longer match it.
	forestJSON := filepath.Join(whDir, "gen-000001", "forest.json")
	raw, err := os.ReadFile(forestJSON)
	if err != nil {
		t.Fatal(err)
	}
	var cat map[string]json.RawMessage
	if err := json.Unmarshal(raw, &cat); err != nil {
		t.Fatal(err)
	}
	var format int
	if err := json.Unmarshal(cat["pack_format"], &format); err != nil {
		t.Fatalf("forest.json has no pack_format: %s", raw)
	}
	wrong := "1"
	if format == 1 {
		wrong = "2"
	}
	cat["pack_format"] = json.RawMessage(wrong)
	tampered, err := json.Marshal(cat)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(forestJSON, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(bin, "-dir", whDir).CombinedOutput()
	if err == nil {
		t.Fatalf("mismatched pack_format not flagged:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("exit = %v, want status 1\n%s", err, out)
	}
	if !strings.Contains(string(out), "declares pack_format") {
		t.Fatalf("mismatch not reported:\n%s", out)
	}
}
