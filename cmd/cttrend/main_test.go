package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cubetree/internal/experiment"
)

func writeBench(t *testing.T, name string, tp experiment.Throughput) string {
	t.Helper()
	data, err := json.MarshalIndent(tp, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(qps ...float64) experiment.Throughput {
	tp := experiment.Throughput{SF: 0.01, Queries: 700}
	clients := []int{1, 2, 4}
	for i := 0; i+1 < len(qps); i += 2 {
		tp.Rows = append(tp.Rows, experiment.ThroughputRow{
			Clients: clients[i/2], ConvQPS: qps[i], CubeQPS: qps[i+1],
		})
	}
	return tp
}

func TestRunIdenticalFilesPass(t *testing.T) {
	base := writeBench(t, "base.json", bench(100, 200, 180, 390, 300, 700))
	cur := writeBench(t, "cur.json", bench(100, 200, 180, 390, 300, 700))
	var out, errOut strings.Builder
	if code := run([]string{base, cur}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on identical files; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Throughput trend") {
		t.Fatalf("no report printed: %q", out.String())
	}
	if strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("identical files marked regressed:\n%s", out.String())
	}
}

func TestRunFlagsInjectedRegression(t *testing.T) {
	base := writeBench(t, "base.json", bench(100, 200, 180, 390))
	// Cube QPS at 2 clients drops 12% — beyond the 10% default threshold.
	cur := writeBench(t, "cur.json", bench(100, 200, 180, 343.2))
	var out, errOut strings.Builder
	if code := run([]string{base, cur}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d on regressed input, want 1; stdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("regression not marked in report:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "regression") {
		t.Fatalf("no regression summary on stderr: %q", errOut.String())
	}
}

func TestRunWarnOnly(t *testing.T) {
	base := writeBench(t, "base.json", bench(100, 200))
	cur := writeBench(t, "cur.json", bench(100, 100)) // cube -50%
	var out, errOut strings.Builder
	if code := run([]string{"-warn-only", base, cur}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d with -warn-only, want 0", code)
	}
	if !strings.Contains(errOut.String(), "warn-only") {
		t.Fatalf("warn-only summary missing: %q", errOut.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	base := writeBench(t, "base.json", bench(100, 200))
	cur := writeBench(t, "cur.json", bench(100, 100))
	var out, errOut strings.Builder
	if code := run([]string{"-json", base, cur}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var rep experiment.TrendReport
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, out.String())
	}
	if !rep.Regressed() {
		t.Fatalf("parsed report not regressed: %+v", rep)
	}
}

func TestRunThresholdFlag(t *testing.T) {
	base := writeBench(t, "base.json", bench(100, 200))
	cur := writeBench(t, "cur.json", bench(100, 184)) // cube -8%
	var out, errOut strings.Builder
	if code := run([]string{base, cur}, &out, &errOut); code != 0 {
		t.Fatalf("8%% drop flagged at default threshold (exit %d)", code)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-threshold", "0.05", base, cur}, &out, &errOut); code != 1 {
		t.Fatalf("8%% drop not flagged at 5%% threshold (exit %d)", code)
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"a.json"}, &out, &errOut); code != 2 {
		t.Fatalf("one arg: exit %d, want 2", code)
	}
	if code := run([]string{"missing1.json", "missing2.json"}, &out, &errOut); code != 2 {
		t.Fatalf("missing files: exit %d, want 2", code)
	}
}
