// Command cttrend diffs two bench baselines written by ctbench -json:
//
//	cttrend BENCH_throughput.json new/BENCH_throughput.json
//	cttrend BENCH_scaling.json new/BENCH_scaling.json
//	cttrend -threshold 0.05 -json base.json cur.json
//
// The artifact kind is sniffed from the rows: a workers axis means a
// scaling sweep (QPS and per-shard refresh window per cluster size),
// anything else a throughput sweep (both engines' QPS per client count).
// Baselines recorded by older builds that lack newer fields (pack_format
// and friends) load fine; missing fields take their documented defaults.
// A drop beyond the threshold (default 10%) is a regression.
//
// Exit status: 0 when no regression, 1 when a regression is flagged (0 with
// -warn-only), 2 on usage or input errors — so CI can gate merges on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"cubetree/internal/experiment"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cttrend", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", experiment.DefaultTrendThreshold,
		"fractional QPS drop flagged as a regression")
	warnOnly := fs.Bool("warn-only", false,
		"report regressions but exit 0 (PR-branch mode for the CI gate)")
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of a table")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: cttrend [flags] <baseline.json> <current.json>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	baseKind, err := experiment.BenchKind(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "cttrend:", err)
		return 2
	}
	curKind, err := experiment.BenchKind(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "cttrend:", err)
		return 2
	}
	if baseKind != curKind {
		fmt.Fprintf(stderr, "cttrend: cannot compare a %s sweep against a %s sweep\n", curKind, baseKind)
		return 2
	}

	// Both comparison kinds expose the same report surface.
	var rep interface {
		Regressed() bool
		String() string
	}
	var regressions int
	opts := experiment.TrendOptions{Threshold: *threshold}
	if baseKind == "scaling" {
		base, err := experiment.LoadScaling(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "cttrend:", err)
			return 2
		}
		cur, err := experiment.LoadScaling(fs.Arg(1))
		if err != nil {
			fmt.Fprintln(stderr, "cttrend:", err)
			return 2
		}
		r := experiment.CompareScaling(base, cur, opts)
		rep, regressions = r, len(r.Regressions())
	} else {
		base, err := experiment.LoadThroughput(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "cttrend:", err)
			return 2
		}
		cur, err := experiment.LoadThroughput(fs.Arg(1))
		if err != nil {
			fmt.Fprintln(stderr, "cttrend:", err)
			return 2
		}
		r := experiment.CompareThroughput(base, cur, opts)
		rep, regressions = r, len(r.Regressions())
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "cttrend:", err)
			return 2
		}
	} else {
		fmt.Fprint(stdout, rep)
	}
	if rep.Regressed() {
		if *warnOnly {
			fmt.Fprintf(stderr, "cttrend: %d regression(s) beyond %.1f%% (warn-only)\n",
				regressions, 100**threshold)
			return 0
		}
		fmt.Fprintf(stderr, "cttrend: %d regression(s) beyond %.1f%%\n",
			regressions, 100**threshold)
		return 1
	}
	return 0
}
