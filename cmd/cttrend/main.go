// Command cttrend diffs two throughput baselines written by ctbench -json:
//
//	cttrend BENCH_throughput.json new/BENCH_throughput.json
//	cttrend -threshold 0.05 -json base.json cur.json
//
// Rows are matched by client count and both engines' wall-clock QPS are
// compared; a drop beyond the threshold (default 10%) is a regression.
//
// Exit status: 0 when no regression, 1 when a regression is flagged (0 with
// -warn-only), 2 on usage or input errors — so CI can gate merges on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"cubetree/internal/experiment"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cttrend", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", experiment.DefaultTrendThreshold,
		"fractional QPS drop flagged as a regression")
	warnOnly := fs.Bool("warn-only", false,
		"report regressions but exit 0 (PR-branch mode for the CI gate)")
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of a table")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: cttrend [flags] <baseline.json> <current.json>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	base, err := experiment.LoadThroughput(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "cttrend:", err)
		return 2
	}
	cur, err := experiment.LoadThroughput(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "cttrend:", err)
		return 2
	}
	rep := experiment.CompareThroughput(base, cur, experiment.TrendOptions{Threshold: *threshold})
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "cttrend:", err)
			return 2
		}
	} else {
		fmt.Fprint(stdout, rep)
	}
	if rep.Regressed() {
		if *warnOnly {
			fmt.Fprintf(stderr, "cttrend: %d regression(s) beyond %.1f%% (warn-only)\n",
				len(rep.Regressions()), 100*rep.Threshold)
			return 0
		}
		fmt.Fprintf(stderr, "cttrend: %d regression(s) beyond %.1f%%\n",
			len(rep.Regressions()), 100*rep.Threshold)
		return 1
	}
	return 0
}
