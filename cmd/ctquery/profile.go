package main

import (
	"fmt"
	"time"

	"cubetree/internal/workload"
)

// printProfile renders one statement's execution profile as an aligned
// table: the EXPLAIN ANALYZE view of what the scan actually did. A nil
// profile prints nothing, so call sites can pass it through unconditionally.
func printProfile(p *workload.QueryProfile) {
	if p == nil {
		return
	}
	fmt.Println("profile:")
	if p.Cache == "hit" {
		fmt.Println("  cache                hit (served from the result cache; nothing scanned)")
		if p.TraceID != "" {
			fmt.Printf("  trace                %s\n", p.TraceID)
		}
		return
	}
	if p.View != "" {
		fmt.Printf("  view                 %s (tree %d)\n", p.View, p.Tree)
	}
	if p.Cache != "" {
		fmt.Printf("  cache                %s\n", p.Cache)
	}
	fmt.Printf("  duration             %v\n", time.Duration(p.DurationNS).Round(time.Microsecond))
	fmt.Printf("  points scanned       %d\n", p.PointsScanned)
	fmt.Printf("  rows returned        %d\n", p.RowsReturned)
	fmt.Printf("  leaf pages read      %d\n", p.LeafPagesRead)
	fmt.Printf("  leaf pages skipped   %d (zone maps / arity pruning)\n", p.LeafPagesSkipped)
	fmt.Printf("  pool hits/misses     %d/%d\n", p.PoolHits, p.PoolMisses)
	if p.TraceID != "" {
		fmt.Printf("  trace                %s\n", p.TraceID)
	}
	if len(p.Shards) == 0 {
		return
	}
	fmt.Println("  shards:")
	fmt.Printf("    %-22s %4s %9s %12s %10s %8s %8s %10s\n",
		"addr", "gen", "attempts", "duration", "straggler", "points", "read", "skipped")
	for _, sh := range p.Shards {
		straggler := "-"
		if sh.Straggler {
			straggler = "yes"
		}
		points, read, skipped := "-", "-", "-"
		if sp := sh.Profile; sp != nil {
			points = fmt.Sprint(sp.PointsScanned)
			read = fmt.Sprint(sp.LeafPagesRead)
			skipped = fmt.Sprint(sp.LeafPagesSkipped)
		}
		fmt.Printf("    %-22s %4d %9d %12v %10s %8s %8s %10s\n",
			sh.Addr, sh.Generation, sh.Attempts,
			time.Duration(sh.DurationNS).Round(time.Microsecond),
			straggler, points, read, skipped)
	}
}
