package main

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cubetree/internal/lattice"
	"cubetree/internal/server"
	"cubetree/internal/workload"
)

// serverOpts routes ctquery over HTTP to a running cubetreed instead of
// opening the warehouse directory in-process.
type serverOpts struct {
	base    string
	sql     string
	node    string
	fix     string
	random  int
	par     int
	limit   int
	seed    uint64
	profile bool
	jsonOut bool
	trace   string
}

func runServerMode(o serverOpts) {
	var retries atomic.Int64
	c := &server.Client{
		Base: strings.TrimRight(o.base, "/"),
		OnRetry: func(attempt, status int, wait time.Duration) {
			retries.Add(1)
		},
	}
	ctx := context.Background()

	if o.random > 0 {
		runServerBatch(ctx, c, o, &retries)
		return
	}

	sql := o.sql
	if sql == "" {
		q, err := queryFromFlags(o.node, o.fix)
		if err != nil {
			fatal(err)
		}
		sql = server.SQLFor(q)
	}
	start := time.Now()
	resp, err := c.QueryWith(ctx, []string{sql}, server.QueryOpts{Profile: o.profile, TraceID: o.trace})
	if err != nil {
		fatal(err)
	}
	if o.jsonOut {
		raw, err := json.MarshalIndent(resp, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(raw))
		return
	}
	res := &resp.Results[0]
	fmt.Println(strings.Join(res.Headers, "\t"))
	for i, r := range res.Rows {
		if i >= o.limit {
			fmt.Printf("... %d more rows\n", len(res.Rows)-o.limit)
			break
		}
		fmt.Println(strings.Join(r, "\t"))
	}
	cached := ""
	if res.Cached {
		cached = ", cached"
	}
	trace := ""
	if resp.TraceID != "" {
		trace = ", trace " + resp.TraceID
	}
	fmt.Printf("(%d rows in %v via %s%s%s)\n",
		len(res.Rows), time.Since(start).Round(time.Microsecond), c.Base, cached, trace)
	printProfile(res.Profile)
}

// runServerBatch mirrors the local -random load: N random slice queries on
// the node, issued as individual HTTP requests by -parallel workers, so the
// daemon's admission path is what gets exercised.
func runServerBatch(ctx context.Context, c *server.Client, o serverOpts, retries *atomic.Int64) {
	views, err := c.Views(ctx)
	if err != nil {
		fatal(err)
	}
	domains := map[lattice.Attr]int64{}
	for a, d := range views.Domains {
		domains[lattice.Attr(a)] = d
	}
	for _, v := range views.Views {
		for _, a := range v.Attrs {
			if domains[lattice.Attr(a)] <= 0 {
				domains[lattice.Attr(a)] = 1 << 20 // unknown: misses return empty
			}
		}
	}
	var attrs []lattice.Attr
	if o.node != "" {
		for _, a := range strings.Split(o.node, ",") {
			attrs = append(attrs, lattice.Attr(strings.TrimSpace(a)))
		}
	}
	gen := workload.NewGenerator(o.seed, domains)
	sqls := make([]string, o.random)
	for i, q := range gen.Batch(attrs, o.random) {
		sqls[i] = server.SQLFor(q)
	}

	par := o.par
	if par < 1 {
		par = 1
	}
	var (
		wg       sync.WaitGroup
		next     = make(chan string)
		rowsOut  atomic.Int64
		cached   atomic.Int64
		shed     atomic.Int64
		firstErr atomic.Value
	)
	start := time.Now()
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sql := range next {
				resp, err := c.QueryWith(ctx, []string{sql}, server.QueryOpts{TraceID: o.trace})
				if err != nil {
					if apiErr, ok := err.(*server.APIError); ok && (apiErr.Status == 429 || apiErr.Status == 503) {
						shed.Add(1)
						continue
					}
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				res := &resp.Results[0]
				rowsOut.Add(int64(len(res.Rows)))
				if res.Cached {
					cached.Add(1)
				}
			}
		}()
	}
	for _, sql := range sqls {
		next <- sql
	}
	close(next)
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		fatal(err)
	}
	wall := time.Since(start)
	fmt.Printf("%d queries on {%s} x%d clients via %s: %d result rows, wall %v (%.1f q/s), %d cached, %d retries, %d shed after retries\n",
		o.random, o.node, par, c.Base, rowsOut.Load(), wall.Round(time.Millisecond),
		float64(o.random)/wall.Seconds(), cached.Load(), retries.Load(), shed.Load())
}

// queryFromFlags builds the slice query the -node/-fix flags describe.
func queryFromFlags(node, fix string) (workload.Query, error) {
	var q workload.Query
	if node != "" {
		for _, a := range strings.Split(node, ",") {
			q.Node = append(q.Node, lattice.Attr(strings.TrimSpace(a)))
		}
	}
	if fix != "" {
		for _, pred := range strings.Split(fix, ",") {
			parts := strings.SplitN(pred, "=", 2)
			if len(parts) != 2 {
				return q, fmt.Errorf("bad predicate %q (want attr=value)", pred)
			}
			v, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
			if err != nil {
				return q, fmt.Errorf("bad predicate value in %q: %v", pred, err)
			}
			q.Fixed = append(q.Fixed, workload.Pred{
				Attr:  lattice.Attr(strings.TrimSpace(parts[0])),
				Value: v,
			})
		}
	}
	return q, nil
}
