// Command ctquery runs slice queries against a Cubetree warehouse built
// with ctload (or the cubetree package):
//
//	ctquery -dir ./wh -node partkey,suppkey -fix partkey=17
//	ctquery -dir ./wh -node custkey -random 100
//
// With -random it generates a batch of uniform slice queries on the node
// (the paper's query generator) and reports throughput.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cubetree"

	"cubetree/internal/lattice"
	"cubetree/internal/pager"
	"cubetree/internal/sqlish"
	"cubetree/internal/workload"
)

func main() {
	var (
		dir     = flag.String("dir", "", "warehouse directory (required)")
		node    = flag.String("node", "", "comma-separated group-by attributes (empty = super-aggregate)")
		fix     = flag.String("fix", "", "comma-separated equality predicates attr=value")
		sql     = flag.String("sql", "", "run a SQL slice query instead of -node/-fix")
		explain = flag.Bool("explain", false, "print the plan instead of executing")
		random  = flag.Int("random", 0, "run N random slice queries on the node instead of one explicit query")
		par     = flag.Int("parallel", 1, "concurrent clients for -random batches")
		seed    = flag.Uint64("seed", 7, "random query seed")
		limit   = flag.Int("limit", 20, "max result rows to print")
		dbgAddr = flag.String("debug-addr", "", "serve /debug/metrics, /debug/traces, /debug/warehouse, and pprof on this address")
		slow    = flag.Duration("slow", 0, "log queries at or above this latency and print them at exit (0 = off)")
		stats_  = flag.Bool("stats", false, "print a per-view breakdown (hits, scan volume, selectivity, pool hit ratio) at exit")
		srvURL  = flag.String("server", "", "query a running cubetreed at this URL over HTTP instead of opening -dir")
		profile = flag.Bool("profile", false, "print an EXPLAIN-ANALYZE execution profile for the query")
		jsonOut = flag.Bool("json", false, "server mode: print the raw JSON response envelope instead of a table")
		trace   = flag.String("trace", "", "server mode: set the outbound X-Trace-Id (empty = server mints one)")
	)
	flag.Parse()
	if *srvURL != "" {
		runServerMode(serverOpts{
			base: *srvURL, sql: *sql, node: *node, fix: *fix,
			random: *random, par: *par, limit: *limit, seed: *seed,
			profile: *profile, jsonOut: *jsonOut, trace: *trace,
		})
		return
	}
	if *dir == "" {
		fatal(fmt.Errorf("-dir is required"))
	}

	stats := &cubetree.Stats{}
	w, err := cubetree.Open(*dir, stats)
	if err != nil {
		fatal(err)
	}
	defer w.Close()

	var o *cubetree.Observer
	if *dbgAddr != "" || *slow > 0 || *stats_ {
		o = cubetree.NewObserver(cubetree.ObserverOptions{SlowThreshold: *slow, Stats: stats})
		w.SetObserver(o)
	}
	if *stats_ {
		defer printViewStats(w)
	}
	if *dbgAddr != "" {
		srv, err := cubetree.ServeDebug(*dbgAddr, w, o)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug server on http://%s/debug/metrics\n", srv.Addr())
	}
	if *slow > 0 {
		defer printSlow(o)
	}

	if *sql != "" {
		if *explain {
			plan, err := w.ExplainSQL(*sql)
			if err != nil {
				fatal(err)
			}
			fmt.Println(plan)
			return
		}
		start := time.Now()
		var headers []string
		var rows [][]string
		var prof *cubetree.QueryProfile
		if *profile {
			st, err := sqlish.Parse(*sql)
			if err != nil {
				fatal(err)
			}
			prof = &cubetree.QueryProfile{}
			resRows, err := w.QueryProfiledCtx(context.Background(), st.Query, prof)
			if err != nil {
				fatal(err)
			}
			headers, rows, err = st.Format(resRows, lattice.Schema(w.Schema()))
			if err != nil {
				fatal(err)
			}
		} else {
			var err error
			headers, rows, err = w.QuerySQL(*sql)
			if err != nil {
				fatal(err)
			}
		}
		fmt.Println(strings.Join(headers, "\t"))
		for i, r := range rows {
			if i >= *limit {
				fmt.Printf("... %d more rows\n", len(rows)-*limit)
				break
			}
			fmt.Println(strings.Join(r, "\t"))
		}
		fmt.Printf("(%d rows in %v)\n", len(rows), time.Since(start).Round(time.Microsecond))
		printProfile(prof)
		return
	}

	var attrs []cubetree.Attr
	if *node != "" {
		for _, a := range strings.Split(*node, ",") {
			attrs = append(attrs, cubetree.Attr(strings.TrimSpace(a)))
		}
	}

	if *random > 0 {
		domains := w.Domains()
		for _, v := range w.Views() {
			for _, a := range v.Attrs {
				if domains[a] <= 0 {
					domains[a] = 1 << 20 // unknown: misses simply return empty
				}
			}
		}
		gen := workload.NewGenerator(*seed, domains)
		queries := gen.Batch(attrs, *random)
		start := time.Now()
		mark := stats.Snapshot()
		results, err := w.QueryBatch(queries, *par)
		if err != nil {
			fatal(err)
		}
		wall := time.Since(start)
		io := stats.Snapshot().Sub(mark)
		var rowsOut int
		for _, rows := range results {
			rowsOut += len(rows)
		}
		fmt.Printf("%d queries on {%s} x%d clients: %d result rows, wall %v (%.1f q/s), I/O %s, modelled %v\n",
			*random, *node, *par, rowsOut, wall.Round(time.Millisecond),
			float64(*random)/wall.Seconds(), io, pager.Disk1998.Cost(io).Round(time.Millisecond))
		return
	}

	q := cubetree.Query{Node: attrs}
	if *fix != "" {
		for _, pred := range strings.Split(*fix, ",") {
			parts := strings.SplitN(pred, "=", 2)
			if len(parts) != 2 {
				fatal(fmt.Errorf("bad predicate %q (want attr=value)", pred))
			}
			v, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad predicate value in %q: %v", pred, err))
			}
			q.Fixed = append(q.Fixed, cubetree.Pred{
				Attr:  cubetree.Attr(strings.TrimSpace(parts[0])),
				Value: v,
			})
		}
	}
	start := time.Now()
	var rows []cubetree.Row
	var prof *cubetree.QueryProfile
	if *profile {
		prof = &cubetree.QueryProfile{}
		rows, err = w.QueryProfiledCtx(context.Background(), q, prof)
	} else {
		rows, err = w.Query(q)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s -> %d rows in %v\n", q, len(rows), time.Since(start).Round(time.Microsecond))
	for i, r := range rows {
		if i >= *limit {
			fmt.Printf("... %d more rows\n", len(rows)-*limit)
			break
		}
		fmt.Printf("  %v  sum=%d count=%d avg=%.2f\n", r.Group, r.Sum, r.Count, r.Avg())
	}
	printProfile(prof)
}

// printViewStats renders the per-view analytics accumulated over the run:
// which views answered queries, how much they scanned versus returned
// (selectivity), and how well their leaf pages stayed in the buffer pool.
func printViewStats(w *cubetree.Warehouse) {
	fmt.Println("\nper-view stats:")
	fmt.Printf("  %-28s %4s %6s %12s %12s %6s\n",
		"view", "tree", "hits", "avg scanned", "selectivity", "hit%")
	for _, va := range w.ViewAnalytics() {
		avgScanned, sel := 0.0, 0.0
		if va.QueryHits > 0 {
			avgScanned = float64(va.PointsScanned) / float64(va.QueryHits)
		}
		if va.PointsScanned > 0 {
			sel = float64(va.RowsReturned) / float64(va.PointsScanned)
		}
		hitPct := 0.0
		if va.LeafPageReads > 0 {
			hitPct = 100 * float64(va.LeafPageReads-va.LeafPageMisses) / float64(va.LeafPageReads)
		}
		fmt.Printf("  %-28s %4d %6d %12.1f %12.4f %5.1f%%\n",
			va.View, va.Tree, va.QueryHits, avgScanned, sel, hitPct)
	}
}

// printSlow dumps the slow-query log, newest first, once the batch is done.
func printSlow(o *cubetree.Observer) {
	entries := o.Slow.Snapshot()
	if len(entries) == 0 {
		fmt.Println("slow-query log: empty")
		return
	}
	fmt.Printf("slow-query log (threshold %v, %d total):\n", o.Slow.Threshold(), o.Slow.Total())
	for _, e := range entries {
		fmt.Printf("  %v  view=%s scanned=%d rows=%d io={%s}  %s\n",
			e.Duration.Round(time.Microsecond), e.View, e.Scanned, e.Rows, e.IO, e.Query)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctquery:", err)
	os.Exit(1)
}
