// Command ctupdate applies a bulk increment to a Cubetree warehouse built
// with ctload, merge-packing the sorted delta into a new forest generation
// (the paper's Figure 15 refresh):
//
//	ctupdate -dir ./wh -sf 0.01 -frac 0.1 -gen 1
//
// The -sf and -seed flags must match the ctload invocation so the increment
// draws from the same key domains.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cubetree"

	"cubetree/internal/lattice"
	"cubetree/internal/pager"
	"cubetree/internal/tpcd"
)

func main() {
	var (
		dir     = flag.String("dir", "", "warehouse directory (required)")
		sf      = flag.Float64("sf", 0.01, "TPC-D scale factor (must match ctload)")
		seed    = flag.Uint64("seed", 1998, "random seed (must match ctload)")
		frac    = flag.Float64("frac", 0.1, "increment size as a fraction of the fact table")
		gen     = flag.Uint64("gen", 1, "increment generation number (vary per day)")
		verify  = flag.Bool("verify", false, "validate forest invariants after the merge")
		dbgAddr = flag.String("debug-addr", "", "serve /debug/metrics, /debug/traces, /debug/warehouse, and pprof on this address during the refresh")
		dbgWait = flag.Duration("debug-wait", 0, "keep the debug server (and process) alive this long after the merge")
	)
	flag.Parse()
	if *dir == "" {
		fatal(fmt.Errorf("-dir is required"))
	}

	stats := &cubetree.Stats{}
	w, err := cubetree.Open(*dir, stats)
	if err != nil {
		fatal(err)
	}
	defer w.Close()

	var o *cubetree.Observer
	if *dbgAddr != "" {
		o = cubetree.NewObserver(cubetree.ObserverOptions{Stats: stats})
		w.SetObserver(o)
		srv, err := cubetree.ServeDebug(*dbgAddr, w, o)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug server on http://%s/debug/metrics\n", srv.Addr())
	}

	ds := tpcd.New(tpcd.Params{SF: *sf, Seed: *seed})
	inc := ds.Increment(*frac, *gen)
	rows := inc.Remaining()

	before := w.Stat()
	mark := stats.Snapshot()
	start := time.Now()
	if err := w.Update(&factRows{it: inc}); err != nil {
		fatal(err)
	}
	wall := time.Since(start)
	io := stats.Snapshot().Sub(mark)
	after := w.Stat()

	fmt.Printf("merged %d delta rows into generation %d\n", rows, w.Generation())
	fmt.Printf("points %d -> %d, size %.1f MB -> %.1f MB\n",
		before.Points, after.Points, float64(before.Bytes)/(1<<20), float64(after.Bytes)/(1<<20))
	fmt.Printf("wall %v; page I/O: %s\n", wall.Round(time.Millisecond), io)
	fmt.Printf("modelled 1998-disk time: %v (sequential share %.0f%%)\n",
		pager.Disk1998.Cost(io).Round(time.Millisecond), seqShare(io)*100)
	if o != nil {
		printPhases(o)
	}
	if *verify {
		if err := w.Verify(); err != nil {
			fatal(err)
		}
		fmt.Println("forest invariants verified")
	}
	if *dbgAddr != "" && *dbgWait > 0 {
		fmt.Printf("debug server up for another %v\n", *dbgWait)
		time.Sleep(*dbgWait)
	}
}

// printPhases summarizes the refresh-pipeline phase histograms the observer
// collected, mirroring what /debug/metrics serves.
func printPhases(o *cubetree.Observer) {
	fmt.Println("refresh phases:")
	for _, phase := range []string{"refresh_sort", "refresh_reorder", "refresh_merge", "refresh_swap"} {
		s := o.PhaseHistogram(phase).Snapshot()
		if s.Count == 0 {
			continue
		}
		fmt.Printf("  %-15s %v\n", phase, time.Duration(s.Sum).Round(time.Millisecond))
	}
}

func seqShare(io pager.StatsSnapshot) float64 {
	total := io.Pages()
	if total == 0 {
		return 1
	}
	return float64(io.SeqReads+io.SeqWrites) / float64(total)
}

type factRows struct{ it *tpcd.Iterator }

func (f *factRows) Next() bool                          { return f.it.Next() }
func (f *factRows) Value(a lattice.Attr) (int64, error) { return f.it.Value(a) }
func (f *factRows) Measure() int64                      { return f.it.Fact().Quantity }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctupdate:", err)
	os.Exit(1)
}
