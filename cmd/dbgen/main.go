// Command dbgen emits the synthetic TPC-D style dataset as CSV, mirroring
// the benchmark's DBGEN utility at a configurable scale factor:
//
//	dbgen -sf 0.01 > facts.csv
//	dbgen -sf 0.01 -increment 0.1 -gen 1 > day1.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"cubetree/internal/tpcd"
)

func main() {
	var (
		sf   = flag.Float64("sf", 0.01, "scale factor (1.0 = 6,001,215 fact rows)")
		seed = flag.Uint64("seed", 1998, "random seed")
		inc  = flag.Float64("increment", 0, "emit an increment of this fraction instead of the base data")
		gen  = flag.Uint64("gen", 1, "increment generation number")
		out  = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	ds := tpcd.New(tpcd.Params{SF: *sf, Seed: *seed})
	var it *tpcd.Iterator
	if *inc > 0 {
		it = ds.Increment(*inc, *gen)
	} else {
		it = ds.FactRows()
	}

	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriterSize(f, 1<<20)
	}
	defer w.Flush()

	fmt.Fprintln(w, "partkey,suppkey,custkey,month,year,quantity,brand,type")
	for it.Next() {
		f := it.Fact()
		fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d\n",
			f.PartKey, f.SuppKey, f.CustKey, f.Month, f.Year, f.Quantity,
			tpcd.BrandOf(f.PartKey), tpcd.TypeOf(f.PartKey))
	}
}
