// Command ctload materializes the paper's TPC-D view set into either
// storage organization:
//
//	ctload -mode cubetree -dir ./wh -sf 0.01
//	ctload -mode conventional -dir ./conv -sf 0.01
//
// The Cubetree mode produces a warehouse usable with ctquery; both modes
// print load time, counted I/O, and on-disk size.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cubetree"

	"cubetree/internal/cube"
	"cubetree/internal/greedy"
	"cubetree/internal/lattice"
	"cubetree/internal/pager"
	"cubetree/internal/relstore"
	"cubetree/internal/tpcd"
)

func main() {
	var (
		mode     = flag.String("mode", "cubetree", "storage organization: cubetree or conventional")
		dir      = flag.String("dir", "", "target directory (required)")
		sf       = flag.Float64("sf", 0.01, "TPC-D scale factor")
		seed     = flag.Uint64("seed", 1998, "random seed")
		replicas = flag.Bool("replicas", true, "cubetree mode: replicate the top view in two extra sort orders")
		dbgAddr  = flag.String("debug-addr", "", "serve /debug/metrics, /debug/traces, and pprof on this address during the load")
	)
	flag.Parse()
	if *dir == "" {
		fatal(fmt.Errorf("-dir is required"))
	}

	ds := tpcd.New(tpcd.Params{SF: *sf, Seed: *seed})
	sel := greedy.PaperSelection(tpcd.AttrPart, tpcd.AttrSupplier, tpcd.AttrCustomer)
	stats := &pager.Stats{}

	var o *cubetree.Observer
	if *dbgAddr != "" {
		o = cubetree.NewObserver(cubetree.ObserverOptions{Stats: stats})
		// The warehouse does not exist yet, so only the observer's endpoints
		// are served; the materialize trace streams into /debug/traces live.
		srv, err := cubetree.ServeDebug(*dbgAddr, nil, o)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug server on http://%s/debug/metrics\n", srv.Addr())
	}

	start := time.Now()

	switch *mode {
	case "cubetree":
		cfg := cubetree.Config{
			Dir:     *dir,
			Domains: ds.Domains(),
			Stats:   stats,
			Obs:     o,
		}
		if *replicas {
			cfg.Replicas = [][]cubetree.Attr{
				{tpcd.AttrSupplier, tpcd.AttrCustomer, tpcd.AttrPart},
				{tpcd.AttrCustomer, tpcd.AttrPart, tpcd.AttrSupplier},
			}
		}
		w, err := cubetree.Materialize(cfg, sel.Views, rows(ds))
		if err != nil {
			fatal(err)
		}
		defer w.Close()
		st := w.Stat()
		fmt.Printf("loaded %d fact rows into %d cubetrees (%d views incl. replicas)\n",
			ds.Facts, st.Trees, st.Views)
		fmt.Printf("points %d, size %.1f MB, leaf fraction %.0f%%\n",
			st.Points, float64(st.Bytes)/(1<<20), st.LeafFraction*100)

	case "conventional":
		conv, err := relstore.Create(*dir, relstore.Options{
			Domains: ds.Domains(),
			Stats:   stats,
		})
		if err != nil {
			fatal(err)
		}
		defer conv.Close()
		if o != nil {
			conv.SetObserver(o)
		}
		data, err := cube.Compute(*dir+"/scratch", rows(ds), sel.Views, cube.Options{Stats: stats})
		if err != nil {
			fatal(err)
		}
		for _, view := range sel.Views {
			if err := conv.LoadView(data[view.Key()]); err != nil {
				fatal(err)
			}
		}
		for _, order := range sel.Indexes {
			if err := conv.BuildIndex(order); err != nil {
				fatal(err)
			}
		}
		for _, vd := range data {
			vd.Remove()
		}
		os.RemoveAll(*dir + "/scratch")
		fmt.Printf("loaded %d fact rows into %d tables + %d indexes\n",
			ds.Facts, len(sel.Views), len(sel.Indexes))
		fmt.Printf("tables %.1f MB, indexes %.1f MB\n",
			float64(conv.TableBytes())/(1<<20), float64(conv.IndexBytes())/(1<<20))

	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	snap := stats.Snapshot()
	fmt.Printf("wall %v; page I/O: %s\n", time.Since(start).Round(time.Millisecond), snap)
	fmt.Printf("modelled 1998-disk time: %v\n", pager.Disk1998.Cost(snap).Round(time.Millisecond))
}

type factRows struct{ it *tpcd.Iterator }

func (f *factRows) Next() bool                          { return f.it.Next() }
func (f *factRows) Value(a lattice.Attr) (int64, error) { return f.it.Value(a) }
func (f *factRows) Measure() int64                      { return f.it.Fact().Quantity }

func rows(ds *tpcd.Dataset) *factRows { return &factRows{it: ds.FactRows()} }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctload:", err)
	os.Exit(1)
}
