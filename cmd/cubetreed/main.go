// Command cubetreed serves a Cubetree warehouse over HTTP: sqlish queries
// on POST /query, the warehouse description on GET /views, CSV deltas on
// POST /admin/refresh, health/readiness probes, and the debug endpoints
// (metrics, Prometheus exposition, traces, pprof) on /debug/ — one port,
// one process.
//
//	cubetreed -dir ./wh -addr :8347
//
// The same binary also runs a distributed forest (see docs/DISTRIBUTED.md):
//
//	cubetreed -worker -dir ./shard0 -addr :9001        # shard worker
//	cubetreed -shards :9001,:9002 -addr :8347          # coordinator
//
// A worker serves its shard's warehouse over the binary wire protocol; a
// coordinator speaks the same HTTP API as a single-process server, scatters
// every query to all shards, folds the partial aggregates, and fans
// refreshes out so shards merge-pack in parallel.
//
// The server is built to stay up under abuse: bounded admission with load
// shedding (429/503 + Retry-After), per-client rate limiting, per-request
// timeouts that actually cancel the underlying scans, panic recovery, and
// graceful drain on SIGTERM/SIGINT (stop accepting, finish in-flight,
// exit).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cubetree"
	"cubetree/internal/dist"
	"cubetree/internal/obs"
	"cubetree/internal/server"
)

func main() {
	var (
		dir        = flag.String("dir", "", "warehouse directory (required unless -shards; build one with ctload)")
		addr       = flag.String("addr", ":8347", "listen address")
		worker     = flag.Bool("worker", false, "serve this warehouse as a shard worker (binary wire protocol, no HTTP)")
		shards     = flag.String("shards", "", "comma-separated worker addresses; serve as the cluster coordinator")
		inflight   = flag.Int("max-inflight", 16, "max concurrently executing requests")
		queue      = flag.Int("max-queue", 0, "max requests queued for admission (0 = 4x max-inflight)")
		queueWait  = flag.Duration("queue-wait", time.Second, "max time a request waits for an execution slot")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-request execution timeout")
		rate       = flag.Float64("rate", 0, "per-client requests/sec (0 = unlimited)")
		burst      = flag.Int("burst", 0, "per-client burst (0 = 2x rate)")
		cacheSize  = flag.Int("cache", 1024, "result cache entries (negative = disabled)")
		batchPar   = flag.Int("batch-parallel", 4, "workers per request's statement batch")
		poolWait   = flag.Duration("pool-wait", 0, "buffer-pool exhaustion wait before shedding (0 = engine default)")
		slow       = flag.Duration("slow", 100*time.Millisecond, "slow-query log threshold (0 = off)")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "max time to finish in-flight requests on shutdown")
		debugAddr  = flag.String("debug-addr", "", "worker mode: serve /debug endpoints (traces, metrics, pprof) on this HTTP address")
		scrape     = flag.Duration("scrape-interval", 10*time.Second, "self-monitoring scrape cadence feeding /debug/history and /debug/slo (0 = off)")
		sloSpec    = flag.String("slo", "", `SLO objectives, e.g. "p99 query_latency_ns < 50ms over 5m, query_errors_total/query_total < 0.1% over 5m" (empty = those defaults; "off" disables)`)
	)
	flag.Parse()
	if *worker && *shards != "" {
		fmt.Fprintln(os.Stderr, "cubetreed: -worker and -shards are mutually exclusive")
		os.Exit(2)
	}
	if *shards != "" {
		runCoordinator(*shards, *addr, serverConfig(*inflight, *queue, *queueWait, *timeout,
			*rate, *burst, *cacheSize, *batchPar, *slow), *slow, *drainGrace, *scrape, *sloSpec)
		return
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "cubetreed: -dir is required")
		flag.Usage()
		os.Exit(2)
	}

	stats := &cubetree.Stats{}
	w, err := cubetree.Open(*dir, stats)
	if err != nil {
		log.Fatalf("cubetreed: open warehouse: %v", err)
	}
	defer w.Close()
	if *poolWait > 0 {
		w.SetExhaustionWait(*poolWait)
	}

	o := cubetree.NewObserver(cubetree.ObserverOptions{SlowThreshold: *slow, Stats: stats})
	w.SetObserver(o)
	stopMon := startSelfMonitoring(o, nil, *scrape, *sloSpec)
	defer stopMon()

	if *worker {
		runWorker(w, o, *dir, *addr, *debugAddr)
		return
	}

	cfg := serverConfig(*inflight, *queue, *queueWait, *timeout, *rate, *burst,
		*cacheSize, *batchPar, *slow)
	cfg.Store = w
	cfg.Obs = o
	cfg.SLO = o.SLO
	cfg.Debug = cubetree.DebugMux(w, o)
	serveHTTP(cfg, *addr, *drainGrace, func(ln net.Addr) {
		log.Printf("cubetreed: serving %s on http://%s (views=%d gen=%d)",
			*dir, ln, len(w.Views()), w.Generation())
	})
}

func serverConfig(inflight, queue int, queueWait, timeout time.Duration, rate float64,
	burst, cacheSize, batchPar int, slow time.Duration) server.Config {
	return server.Config{
		MaxInFlight:      inflight,
		MaxQueue:         queue,
		QueueWait:        queueWait,
		RequestTimeout:   timeout,
		RatePerSec:       rate,
		RateBurst:        burst,
		CacheEntries:     cacheSize,
		BatchParallelism: batchPar,
	}
}

// runWorker serves the warehouse over the shard wire protocol until
// SIGTERM/SIGINT, then stops accepting, cuts in-flight connections, and
// aborts any uncommitted pending refresh. With -debug-addr it also serves
// the debug endpoints over HTTP, so /debug/traces?trace=<id> works on a
// worker process just like on the coordinator — the distributed-tracing
// story needs every hop inspectable.
func runWorker(w *cubetree.Warehouse, o *cubetree.Observer, dir, addr, debugAddr string) {
	wk := dist.NewWorker(cubetree.ShardBackend(w), cubetree.ShardCSV, o)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("cubetreed: listen: %v", err)
	}
	if debugAddr != "" {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			log.Fatalf("cubetreed: debug listen: %v", err)
		}
		dsrv := &http.Server{Handler: cubetree.DebugMux(w, o), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := dsrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("cubetreed: debug serve: %v", err)
			}
		}()
		defer dsrv.Close()
		log.Printf("cubetreed: worker debug endpoints on http://%s/debug/", dln.Addr())
	}
	done := make(chan error, 1)
	go func() { done <- wk.Serve(ln) }()
	log.Printf("cubetreed: worker serving %s on %s (views=%d gen=%d)",
		dir, ln.Addr(), len(w.Views()), w.Generation())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-done:
		log.Fatalf("cubetreed: worker serve: %v", err)
	case s := <-sig:
		log.Printf("cubetreed: worker %v: shutting down", s)
	}
	if err := wk.Close(); err != nil {
		log.Printf("cubetreed: worker close: %v", err)
	}
	log.Printf("cubetreed: stopped")
}

// startSelfMonitoring attaches the history ring (scraping source, or the
// observer's own registry when source is nil) and the SLO tracker to o,
// honoring the -scrape-interval/-slo flags. Returns the scraper's shutdown
// func. A zero interval disables both; sloSpec "off" keeps the history but
// drops the objectives.
func startSelfMonitoring(o *cubetree.Observer, source func() obs.Snapshot,
	interval time.Duration, sloSpec string) func() {
	if o == nil || interval <= 0 {
		return func() {}
	}
	h := o.StartHistory(obs.HistoryOptions{Source: source, Interval: interval})
	if sloSpec != "off" {
		var objectives []obs.Objective // empty = tracker defaults
		if sloSpec != "" {
			parsed, err := obs.ParseObjectives(sloSpec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cubetreed: -slo: %v\n", err)
				os.Exit(2)
			}
			objectives = parsed
		}
		o.SetSLOs(objectives)
	}
	return h.Close
}

// runCoordinator connects to the shard workers and serves the standard HTTP
// API over the scatter-gather store.
func runCoordinator(shardList, addr string, cfg server.Config, slow, drainGrace time.Duration,
	scrape time.Duration, sloSpec string) {
	o := cubetree.NewObserver(cubetree.ObserverOptions{SlowThreshold: slow})
	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Shards: strings.Split(shardList, ","),
		Obs:    o,
	})
	if err != nil {
		log.Fatalf("cubetreed: coordinator: %v", err)
	}
	defer coord.Close()
	// The coordinator's history samples the whole fleet: each scrape rides
	// the metrics wire frames to every worker and merges the answers, so
	// /debug/history and /debug/slo here describe the cluster.
	scrapeTimeout := scrape
	if scrapeTimeout <= 0 || scrapeTimeout > 5*time.Second {
		scrapeTimeout = 5 * time.Second
	}
	stopMon := startSelfMonitoring(o, func() obs.Snapshot {
		ctx, cancel := context.WithTimeout(context.Background(), scrapeTimeout)
		defer cancel()
		return coord.FleetSnapshot(ctx)
	}, scrape, sloSpec)
	defer stopMon()
	cfg.Store = coord
	cfg.Obs = o
	cfg.SLO = o.SLO
	cfg.Debug = cubetree.CoordinatorDebugMux(coord, o)
	serveHTTP(cfg, addr, drainGrace, func(ln net.Addr) {
		log.Printf("cubetreed: coordinator serving %d shard(s) on http://%s (views=%d gen=%d)",
			len(strings.Split(shardList, ",")), ln, len(coord.Views()), coord.Generation())
	})
}

// serveHTTP runs the HTTP front door until SIGTERM/SIGINT, then drains.
func serveHTTP(cfg server.Config, addr string, drainGrace time.Duration, ready func(net.Addr)) {
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("cubetreed: listen: %v", err)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	ready(ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-done:
		log.Fatalf("cubetreed: serve: %v", err)
	case s := <-sig:
		log.Printf("cubetreed: %v: draining (grace %v)", s, drainGrace)
	}

	// Drain first — new queries shed with 503, readiness flips so load
	// balancers stop routing here — then close the listener once in-flight
	// work is done. Shutdown also waits for handlers still writing.
	ctx, cancel := context.WithTimeout(context.Background(), drainGrace)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("cubetreed: drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("cubetreed: shutdown: %v", err)
	}
	log.Printf("cubetreed: stopped")
}
