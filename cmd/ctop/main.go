// Command ctop is a live terminal console for a cubetreed fleet — top(1) for
// a cubetree cluster. It polls the self-monitoring endpoints of a coordinator
// (or a single-process server) and redraws a one-screen view:
//
//   - fleet QPS / p99 latency / error-rate sparklines from /debug/history
//
//   - an SLO budget bar per objective from /debug/slo
//
//   - the per-shard table (generation, in-flight, p95, pool occupancy,
//     stragglers, scrape errors) from /debug/cluster
//
//   - refresh progress and ETA when a merge-pack is running
//
//     ctop -addr http://localhost:8347
//
// Keys: q (or Ctrl-C) quits, any other key redraws immediately.
//
// Non-interactive mode for scripts and CI:
//
//	ctop -addr http://localhost:8347 -once -json -min-qps 0.01
//
// prints one JSON report and exits 1 if the fleet QPS is below -min-qps.
// Everything is plain ANSI; no terminal library, no dependencies.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cubetree/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8347", "coordinator (or server) base URL")
		interval = flag.Duration("interval", 2*time.Second, "poll cadence")
		window   = flag.Duration("window", 30*time.Second, "rate/percentile window for the history series")
		once     = flag.Bool("once", false, "poll once, print, and exit (non-interactive)")
		jsonOut  = flag.Bool("json", false, "with -once: print the machine-readable report instead of the console frame")
		minQPS   = flag.Float64("min-qps", 0, "with -once: exit 1 when fleet QPS is below this (CI assertion)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request HTTP timeout")
	)
	flag.Parse()
	c := newClient(strings.TrimRight(*addr, "/"), *timeout)

	if *once {
		st, err := collect(c, *window)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctop: %v\n", err)
			os.Exit(1)
		}
		rep := summarize(st)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			enc.Encode(rep)
		} else {
			render(os.Stdout, st, rep, *window, false)
		}
		if rep.Fleet.QPS < *minQPS {
			fmt.Fprintf(os.Stderr, "ctop: fleet QPS %.4f below -min-qps %.4f\n", rep.Fleet.QPS, *minQPS)
			os.Exit(1)
		}
		return
	}

	runConsole(c, *interval, *window)
}

// runConsole is the interactive clear-and-redraw loop. Stdin is read on a
// side goroutine so 'q' quits without needing raw terminal mode: any line
// starting with q exits, any other input forces an immediate repoll.
func runConsole(c *client, interval, window time.Duration) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	keys := make(chan byte)
	go func() {
		r := bufio.NewReader(os.Stdin)
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return
			}
			b := byte(' ')
			if s := strings.TrimSpace(line); s != "" {
				b = s[0]
			}
			keys <- b
		}
	}()

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		frame := &strings.Builder{}
		st, err := collect(c, window)
		if err != nil {
			fmt.Fprintf(frame, "ctop: %v\n(retrying every %v; q quits)\n", err, interval)
		} else {
			render(frame, st, summarize(st), window, true)
		}
		// Clear screen + home, then the frame in one write to avoid flicker.
		os.Stdout.WriteString("\x1b[2J\x1b[H" + frame.String())

		select {
		case <-sig:
			fmt.Println()
			return
		case k := <-keys:
			if k == 'q' || k == 'Q' {
				return
			}
			// Any other key: fall through and repoll immediately.
		case <-ticker.C:
		}
	}
}

// render writes one console frame. live toggles the interactive footer.
func render(w io.Writer, st *status, rep report, window time.Duration, live bool) {
	fmt.Fprintf(w, "ctop — %s   %s   health=%s", st.Addr, st.At.Format("15:04:05"), rep.Health)
	if rep.Fleet.Generation > 0 {
		fmt.Fprintf(w, "   gen=%d", rep.Fleet.Generation)
	}
	if rep.Fleet.Shards > 0 {
		fmt.Fprintf(w, "   shards=%d/%d scraped", rep.Fleet.ScrapedShards, rep.Fleet.Shards)
	}
	if rep.Fleet.UptimeS > 0 {
		fmt.Fprintf(w, "   up=%s", (time.Duration(rep.Fleet.UptimeS) * time.Second).String())
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)

	fmt.Fprintf(w, "  qps     %8.2f  %s\n", rep.Fleet.QPS, seriesSpark(st.QPS, true))
	fmt.Fprintf(w, "  p99     %8s  %s\n", fmtNS(rep.Fleet.P99NS), seriesSparkP99(st.Latency))
	fmt.Fprintf(w, "  errors  %7.2f%%  %s\n", rep.Fleet.ErrorRate*100, seriesSpark(st.Errors, true))
	fmt.Fprintf(w, "          %s(window %s)\n", strings.Repeat(" ", 2), window)

	if rep.Refresh != nil && rep.Refresh.Active {
		fmt.Fprintf(w, "\n  refresh  %s %d.%d%%  eta %s\n",
			bar(float64(rep.Refresh.ProgressPermille)/1000, 30),
			rep.Refresh.ProgressPermille/10, rep.Refresh.ProgressPermille%10,
			fmtNS(rep.Refresh.ETANS))
	}

	if len(rep.SLO) > 0 {
		fmt.Fprintln(w, "\n  SLO budget remaining")
		for _, o := range rep.SLO {
			state := "ok"
			if o.NoData {
				state = "no data"
			} else if o.Burning {
				state = fmt.Sprintf("BURNING %.1fx", o.BurnRate)
			}
			fmt.Fprintf(w, "    %-24s %s %6.1f%%  %s\n",
				o.Name, bar(o.BudgetRemaining, 20), o.BudgetRemaining*100, state)
		}
	}

	if len(rep.Shards) > 0 {
		fmt.Fprintln(w, "\n  shard                 gen  inflight      p95      pool  served  flags")
		for _, sh := range rep.Shards {
			flags := ""
			if sh.Straggler {
				flags = "straggler"
			}
			if sh.ScrapeError != "" {
				if flags != "" {
					flags += ","
				}
				flags += "scrape: " + sh.ScrapeError
			}
			pool := "-"
			if sh.PoolCapacity > 0 {
				pool = fmt.Sprintf("%d/%d", sh.PoolResident, sh.PoolCapacity)
			}
			fmt.Fprintf(w, "    %-20s %4d  %8d  %7s  %8s  %6d  %s\n",
				sh.Addr, sh.Generation, sh.InFlight, fmtNS(sh.P95LatencyNS), pool,
				sh.QueriesServed, flags)
		}
	}

	if live {
		fmt.Fprintln(w, "\n  q+Enter quit · Enter refresh now")
	}
}

// seriesSpark renders a sparkline of a series: rates for counters, values for
// gauges.
func seriesSpark(s obs.Series, rate bool) string {
	vals := make([]float64, 0, len(s.Points))
	for _, p := range s.Points {
		if rate && s.Kind == "counter" {
			vals = append(vals, p.Rate)
		} else {
			vals = append(vals, p.Value)
		}
	}
	return obs.SparkString(vals)
}

// seriesSparkP99 renders the per-window p99 trend of a histogram series.
func seriesSparkP99(s obs.Series) string {
	vals := make([]float64, 0, len(s.Points))
	for _, p := range s.Points {
		vals = append(vals, float64(p.P99))
	}
	return obs.SparkString(vals)
}

// bar renders frac (clamped to [0,1]) as a fixed-width block bar; negative
// budget renders empty.
func bar(frac float64, width int) string {
	if math.IsNaN(frac) || frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	fill := int(frac*float64(width) + 0.5)
	return "[" + strings.Repeat("█", fill) + strings.Repeat("·", width-fill) + "]"
}

// fmtNS renders nanoseconds compactly (ns/µs/ms/s).
func fmtNS(ns int64) string {
	switch {
	case ns <= 0:
		return "-"
	case ns < 1_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	}
}
