package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"cubetree/internal/dist"
	"cubetree/internal/obs"
	"cubetree/internal/server"
)

// client fetches the debug endpoints of one coordinator (or single-process
// server, or worker debug port).
type client struct {
	base string
	hc   *http.Client
}

func newClient(base string, timeout time.Duration) *client {
	return &client{base: base, hc: &http.Client{Timeout: timeout}}
}

// errNotFound marks an endpoint the target does not serve (e.g.
// /debug/cluster on a single-process server) — optional data, not a failure.
var errNotFound = fmt.Errorf("not found")

func (c *client) getJSON(path string, v any) error {
	res, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, res.Body)
		return errNotFound
	}
	if res.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(res.Body, 512))
		return fmt.Errorf("%s: HTTP %d: %s", path, res.StatusCode, body)
	}
	return json.NewDecoder(res.Body).Decode(v)
}

// latestBody is /debug/history?latest=1.
type latestBody struct {
	AtUnixNS int64        `json:"at_unix_ns"`
	Snapshot obs.Snapshot `json:"snapshot"`
}

// status is one full poll of the target: everything a frame of the console
// (or one -once -json report) needs.
type status struct {
	Addr    string
	At      time.Time
	QPS     obs.Series // query_total
	Latency obs.Series // query_latency_ns
	Errors  obs.Series // query_errors_total
	Latest  *latestBody
	Cluster *dist.ClusterInfo    // nil on single-process targets
	SLO     *obs.SLOReport       // nil when SLO tracking is off
	Health  *server.HealthStatus // nil on worker debug ports (no /healthz)
}

// collect polls the target once. The history series are required — ctop is a
// time-series console, so a target without -scrape-interval is an error —
// while cluster, SLO, and health views degrade to absent sections.
func collect(c *client, window time.Duration) (*status, error) {
	st := &status{Addr: c.base, At: time.Now()}
	w := window.String()
	if err := c.getJSON("/debug/history?metric=query_total&window="+w, &st.QPS); err != nil {
		if err == errNotFound {
			return nil, fmt.Errorf("%s serves no /debug/history — run the target with -scrape-interval > 0", c.base)
		}
		return nil, err
	}
	// Latency/error series may not exist yet (no traffic scraped): tolerate.
	if err := c.getJSON("/debug/history?metric=query_latency_ns&window="+w, &st.Latency); err != nil && err != errNotFound {
		return nil, err
	}
	if err := c.getJSON("/debug/history?metric=query_errors_total&window="+w, &st.Errors); err != nil && err != errNotFound {
		return nil, err
	}
	var latest latestBody
	switch err := c.getJSON("/debug/history?latest=1", &latest); err {
	case nil:
		st.Latest = &latest
	case errNotFound:
	default:
		return nil, err
	}
	var cluster dist.ClusterInfo
	switch err := c.getJSON("/debug/cluster", &cluster); err {
	case nil:
		st.Cluster = &cluster
	case errNotFound:
	default:
		return nil, err
	}
	var slo obs.SLOReport
	switch err := c.getJSON("/debug/slo", &slo); err {
	case nil:
		st.SLO = &slo
	case errNotFound:
	default:
		return nil, err
	}
	var health server.HealthStatus
	if err := c.getJSON("/healthz", &health); err == nil {
		st.Health = &health
	}
	return st, nil
}

// lastPoint returns the newest point of a series, if any.
func lastPoint(s obs.Series) (obs.SeriesPoint, bool) {
	if len(s.Points) == 0 {
		return obs.SeriesPoint{}, false
	}
	return s.Points[len(s.Points)-1], true
}

// fleetSummary is the rollup block of the machine-readable report.
type fleetSummary struct {
	QPS           float64 `json:"qps"`
	P99NS         int64   `json:"p99_ns"`
	ErrorRate     float64 `json:"error_rate"`
	Generation    int64   `json:"generation"`
	ScrapedShards int64   `json:"scraped_shards,omitempty"`
	Shards        int64   `json:"shards,omitempty"`
	UptimeS       int64   `json:"uptime_s,omitempty"`
}

type shardSummary struct {
	Addr          string `json:"addr"`
	Generation    int    `json:"generation"`
	InFlight      int64  `json:"in_flight"`
	P95LatencyNS  int64  `json:"p95_latency_ns"`
	PoolResident  int64  `json:"pool_resident_frames"`
	PoolCapacity  int64  `json:"pool_capacity_frames"`
	Straggler     bool   `json:"straggler,omitempty"`
	ScrapeError   string `json:"scrape_error,omitempty"`
	QueriesServed uint64 `json:"queries_served,omitempty"`
}

type sloSummary struct {
	Name            string  `json:"name"`
	BurnRate        float64 `json:"burn_rate"`
	BudgetRemaining float64 `json:"budget_remaining"`
	Burning         bool    `json:"burning"`
	NoData          bool    `json:"no_data,omitempty"`
}

type refreshSummary struct {
	Active           bool  `json:"active"`
	ProgressPermille int64 `json:"progress_permille"`
	ETANS            int64 `json:"eta_ns"`
}

// report is the -once -json body.
type report struct {
	Addr     string          `json:"addr"`
	AtUnixMS int64           `json:"at_unix_ms"`
	Health   string          `json:"health"`
	Fleet    fleetSummary    `json:"fleet"`
	Shards   []shardSummary  `json:"shards,omitempty"`
	SLO      []sloSummary    `json:"slo,omitempty"`
	Refresh  *refreshSummary `json:"refresh,omitempty"`
}

// summarize reduces one poll to the report shape shared by -json output and
// the console's headline numbers.
func summarize(st *status) report {
	rep := report{Addr: st.Addr, AtUnixMS: st.At.UnixMilli(), Health: "unknown"}
	if st.Health != nil {
		rep.Health = st.Health.Status
	}
	if p, ok := lastPoint(st.QPS); ok {
		rep.Fleet.QPS = p.Rate
	}
	if p, ok := lastPoint(st.Latency); ok {
		rep.Fleet.P99NS = p.P99
	}
	if ep, ok := lastPoint(st.Errors); ok {
		if qp, ok2 := lastPoint(st.QPS); ok2 && qp.Delta > 0 {
			rep.Fleet.ErrorRate = ep.Delta / qp.Delta
		}
	}
	if st.Latest != nil {
		g := st.Latest.Snapshot.Gauges
		rep.Fleet.Generation = g["generation"]
		rep.Fleet.ScrapedShards = g["dist_scraped_shards"]
		rep.Fleet.Shards = g["dist_shards"]
		rep.Fleet.UptimeS = g["process_uptime_seconds"]
		if _, ok := g["refresh_active"]; ok {
			rep.Refresh = &refreshSummary{
				Active:           g["refresh_active"] != 0,
				ProgressPermille: g["refresh_progress_permille"],
				ETANS:            g["refresh_eta_ns"],
			}
		}
	}
	if st.Cluster != nil {
		if rep.Fleet.Generation == 0 {
			rep.Fleet.Generation = int64(st.Cluster.Generation)
		}
		for _, sh := range st.Cluster.Shards {
			row := shardSummary{
				Addr:         sh.Addr,
				Generation:   sh.Generation,
				InFlight:     sh.InFlight,
				P95LatencyNS: sh.P95LatencyNS,
				PoolResident: sh.PoolResidentFrames,
				PoolCapacity: sh.PoolCapacityFrames,
				Straggler:    sh.Straggler,
				ScrapeError:  sh.Error,
			}
			if sh.Metrics != nil {
				row.QueriesServed = sh.Metrics.Counters["query_total"]
			}
			rep.Shards = append(rep.Shards, row)
		}
	}
	if st.SLO != nil {
		for _, o := range st.SLO.Objectives {
			rep.SLO = append(rep.SLO, sloSummary{
				Name:            o.Name,
				BurnRate:        o.Short.BurnRate,
				BudgetRemaining: o.Short.BudgetRemaining,
				Burning:         o.Burning,
				NoData:          o.Short.NoData,
			})
		}
	}
	return rep
}
