package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cubetree"
	"cubetree/internal/dist"
	"cubetree/internal/obs"
)

// cannedTarget serves a frozen copy of every endpoint ctop polls, so collect
// and summarize can be checked field by field without a live cluster.
func cannedTarget(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/history", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		switch {
		case q.Get("latest") != "":
			fmt.Fprint(w, `{"at_unix_ns": 1000, "snapshot": {"gauges": {
				"generation": 4, "dist_scraped_shards": 2, "dist_shards": 2,
				"process_uptime_seconds": 90,
				"refresh_active": 1, "refresh_progress_permille": 250, "refresh_eta_ns": 3000000000}}}`)
		case q.Get("metric") == "query_total":
			fmt.Fprint(w, `{"metric":"query_total","kind":"counter","window_s":10,"cumulative":90,
				"points":[{"t_ms":1,"delta":40,"rate":4},{"t_ms":2,"delta":50,"rate":5}]}`)
		case q.Get("metric") == "query_latency_ns":
			fmt.Fprint(w, `{"metric":"query_latency_ns","kind":"histogram","window_s":10,
				"points":[{"t_ms":1,"p50":300000,"p99":900000},{"t_ms":2,"p50":400000,"p99":1200000}]}`)
		case q.Get("metric") == "query_errors_total":
			fmt.Fprint(w, `{"metric":"query_errors_total","kind":"counter","window_s":10,"cumulative":5,
				"points":[{"t_ms":2,"delta":5,"rate":0.5}]}`)
		default:
			http.Error(w, `{"error":"unknown metric"}`, http.StatusNotFound)
		}
	})
	mux.HandleFunc("/debug/cluster", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"generation":4,"generation_skew":0,
			"shards":[
			  {"addr":"127.0.0.1:9001","generation":2,"in_flight":1,"p95_latency_ns":700000,
			   "pool_resident_frames":12,"pool_capacity_frames":64,
			   "metrics":{"counters":{"query_total":45}}},
			  {"addr":"127.0.0.1:9002","generation":2,"straggler":true,"error":"dial: connection refused"}],
			"fleet":{"counters":{"query_total":45},"gauges":{}}}`)
	})
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"taken_unix_ms":2,"objectives":[
			{"name":"query-p99-latency","target":0.99,"burning":true,
			 "short":{"burn_rate":2.5,"budget_remaining":-1.5}},
			{"name":"query-error-ratio","target":0.999,"burning":false,
			 "short":{"burn_rate":0.1,"budget_remaining":0.9}}],
			"violations":["query-p99-latency: burn 2.5x"]}`)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"degraded","generation":4,"violations":["query-p99-latency: burn 2.5x"]}`)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestCollectAndSummarizeCanned(t *testing.T) {
	srv := cannedTarget(t)
	st, err := collect(newClient(srv.URL, time.Second), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rep := summarize(st)

	if rep.Health != "degraded" {
		t.Errorf("health = %q, want degraded", rep.Health)
	}
	if rep.Fleet.QPS != 5 {
		t.Errorf("qps = %v, want 5 (newest point's rate)", rep.Fleet.QPS)
	}
	if rep.Fleet.P99NS != 1200000 {
		t.Errorf("p99 = %d, want 1200000", rep.Fleet.P99NS)
	}
	if rep.Fleet.ErrorRate != 0.1 { // 5 errors / 50 queries in the newest window
		t.Errorf("error rate = %v, want 0.1", rep.Fleet.ErrorRate)
	}
	if rep.Fleet.Generation != 4 || rep.Fleet.Shards != 2 || rep.Fleet.ScrapedShards != 2 {
		t.Errorf("fleet identity = %+v", rep.Fleet)
	}
	if rep.Refresh == nil || !rep.Refresh.Active || rep.Refresh.ProgressPermille != 250 {
		t.Errorf("refresh = %+v", rep.Refresh)
	}
	if len(rep.Shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(rep.Shards))
	}
	if rep.Shards[0].Addr != "127.0.0.1:9001" || rep.Shards[0].QueriesServed != 45 {
		t.Errorf("shard 0 = %+v", rep.Shards[0])
	}
	if !rep.Shards[1].Straggler || rep.Shards[1].ScrapeError == "" {
		t.Errorf("shard 1 should be a straggler with a scrape error: %+v", rep.Shards[1])
	}
	if len(rep.SLO) != 2 || !rep.SLO[0].Burning || rep.SLO[0].BudgetRemaining != -1.5 {
		t.Errorf("slo = %+v", rep.SLO)
	}

	var frame strings.Builder
	render(&frame, st, rep, 30*time.Second, true)
	out := frame.String()
	for _, want := range []string{
		"health=degraded", "127.0.0.1:9001", "127.0.0.1:9002",
		"BURNING 2.5x", "straggler", "refresh", "q+Enter quit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
}

// A single-process target has no /debug/cluster or /debug/slo; both sections
// must degrade to absent, not fail the poll.
func TestCollectToleratesMissingOptionalEndpoints(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/history", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("latest") != "" {
			http.Error(w, `{"error":"no samples yet"}`, http.StatusNotFound)
			return
		}
		fmt.Fprint(w, `{"metric":"q","kind":"counter","points":[]}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	st, err := collect(newClient(srv.URL, time.Second), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cluster != nil || st.SLO != nil || st.Health != nil || st.Latest != nil {
		t.Errorf("optional sections should be nil: %+v", st)
	}
	rep := summarize(st)
	if rep.Health != "unknown" || rep.Fleet.QPS != 0 {
		t.Errorf("report = %+v", rep)
	}
}

// A target without self-monitoring (-scrape-interval 0) must produce a
// pointed error, since ctop is useless without the history ring.
func TestCollectRequiresHistory(t *testing.T) {
	srv := httptest.NewServer(http.NewServeMux()) // 404 everywhere
	defer srv.Close()
	_, err := collect(newClient(srv.URL, time.Second), time.Second)
	if err == nil || !strings.Contains(err.Error(), "-scrape-interval") {
		t.Fatalf("err = %v, want hint about -scrape-interval", err)
	}
}

// ctopRows is a tiny in-memory fact stream for the live-cluster test.
type ctopRows struct {
	rows [][3]int64 // product, region, qty
	i    int
}

func (s *ctopRows) Next() bool { s.i++; return s.i <= len(s.rows) }
func (s *ctopRows) Value(a cubetree.Attr) (int64, error) {
	switch a {
	case "product":
		return s.rows[s.i-1][0], nil
	case "region":
		return s.rows[s.i-1][1], nil
	}
	return 0, fmt.Errorf("unknown attribute %q", a)
}
func (s *ctopRows) Measure() int64 { return s.rows[s.i-1][2] }

// TestOnceAgainstLiveCluster is the acceptance check: a real in-process
// 2-worker cluster behind a coordinator, polled exactly the way
// `ctop -once -json` does, must yield per-shard rows plus a fleet rollup
// with QPS > 0.
func TestOnceAgainstLiveCluster(t *testing.T) {
	dir := t.TempDir()
	views := []cubetree.View{
		cubetree.NewView("by-product-region", "product", "region"),
		cubetree.NewView("total"),
	}
	var addrs []string
	for i := 0; i < 2; i++ {
		wh, err := cubetree.Materialize(cubetree.Config{
			Dir:     filepath.Join(dir, fmt.Sprintf("shard%d", i)),
			Domains: map[cubetree.Attr]int64{"product": 3, "region": 2},
		}, views, &ctopRows{rows: [][3]int64{
			{1, 1, 10}, {1, 2, 5}, {2, 1, 7}, {int64(i) + 1, 1, 4},
		}})
		if err != nil {
			t.Fatal(err)
		}
		defer wh.Close()
		wo := cubetree.NewObserver(cubetree.ObserverOptions{})
		wh.SetObserver(wo)
		wk := dist.NewWorker(cubetree.ShardBackend(wh), cubetree.ShardCSV, wo)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go wk.Serve(ln)
		defer wk.Close()
		addrs = append(addrs, ln.Addr().String())
	}

	o := cubetree.NewObserver(cubetree.ObserverOptions{})
	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Shards:       addrs,
		Retries:      3,
		RetryBackoff: 10 * time.Millisecond,
		Obs:          o,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Same monitoring shape as cubetreed's coordinator path, but sampled by
	// hand so the test is deterministic: one fleet sample before traffic, one
	// after.
	h := o.StartHistory(obs.HistoryOptions{
		Interval: time.Hour, // scraper sleeps; we drive Sample() ourselves
		Source: func() obs.Snapshot {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			return coord.FleetSnapshot(ctx)
		},
	})
	defer h.Close()
	o.SetSLOs(nil)

	for i := 0; i < 20; i++ {
		if _, err := coord.QueryCtx(context.Background(), cubetree.Query{}); err != nil {
			t.Fatal(err)
		}
	}
	h.Sample()

	srv := httptest.NewServer(cubetree.CoordinatorDebugMux(coord, o))
	defer srv.Close()

	// A window at or below the ring interval resolves to stride 1, pairing
	// our two hand-driven samples.
	st, err := collect(newClient(srv.URL, 5*time.Second), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rep := summarize(st)

	if rep.Fleet.QPS <= 0 {
		t.Errorf("fleet QPS = %v, want > 0", rep.Fleet.QPS)
	}
	if len(rep.Shards) != 2 {
		t.Fatalf("shard rows = %d, want 2", len(rep.Shards))
	}
	for i, sh := range rep.Shards {
		if sh.Addr != addrs[i] {
			t.Errorf("shard %d addr = %q, want %q", i, sh.Addr, addrs[i])
		}
		if sh.ScrapeError != "" {
			t.Errorf("shard %d scrape error: %s", i, sh.ScrapeError)
		}
	}
	if rep.Fleet.Shards != 2 || rep.Fleet.ScrapedShards != 2 {
		t.Errorf("fleet coverage = %d/%d, want 2/2", rep.Fleet.ScrapedShards, rep.Fleet.Shards)
	}
	if len(rep.SLO) < 2 {
		t.Errorf("slo objectives = %d, want >= 2 defaults", len(rep.SLO))
	}

	// The -json body must round-trip with the sections CI greps for.
	body, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"qps"`, `"shards"`, addrs[0], addrs[1]} {
		if !strings.Contains(string(body), want) {
			t.Errorf("json report missing %s: %s", want, body)
		}
	}
}

func TestBarAndFmtNS(t *testing.T) {
	if got := bar(0.5, 4); got != "[██··]" {
		t.Errorf("bar(0.5,4) = %q", got)
	}
	if got := bar(-2, 4); got != "[····]" {
		t.Errorf("bar(-2,4) = %q (negative budget renders empty)", got)
	}
	if got := bar(2, 4); got != "[████]" {
		t.Errorf("bar(2,4) = %q", got)
	}
	cases := map[int64]string{0: "-", 500: "500ns", 2500: "2.5µs", 3_500_000: "3.5ms", 2_000_000_000: "2.00s"}
	for ns, want := range cases {
		if got := fmtNS(ns); got != want {
			t.Errorf("fmtNS(%d) = %q, want %q", ns, got, want)
		}
	}
}
